// Kernel-equivalence and autograd suite for the sparse execution path
// (src/tensor/sparse.h, src/autograd/sparse.h).
//
// Mirrors tensor_kernels_test: every kernel is checked against an
// independent naive reference across odd/prime shapes, both beta modes and
// batch layouts, plus OpenMP thread-count bit-determinism; every taped op
// is finite-difference gradchecked (dense side via the transpose SpMM,
// sparse-values side via SDDMM).

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/autograd/sparse.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/simd.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "tests/testing_utils.h"

namespace dyhsl::tensor {
namespace {

namespace ag = ::dyhsl::autograd;
using ::dyhsl::testing::SeededTest;

// Random CSR with ~`density` fill; at least one entry so tests are not
// vacuous. Odd densities leave empty rows/cols, exercising the zero-row
// paths of every kernel.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density, Rng* rng) {
  std::vector<Triplet> trips;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) trips.push_back({r, c, rng->Gaussian()});
    }
  }
  if (trips.empty()) trips.push_back({0, 0, 1.0f});
  return CsrMatrix::FromTriplets(rows, cols, std::move(trips));
}

// Independent dense reference for op(A) X over 2-D or 3-D X.
Tensor RefSpMM(const Tensor& a_dense, const Tensor& x, bool trans_a) {
  Tensor a = trans_a ? Transpose2D(a_dense) : a_dense;
  if (x.dim() == 2) return MatMul(a, x);
  Tensor out({x.size(0), a.size(0), x.size(2)});
  for (int64_t b = 0; b < x.size(0); ++b) {
    Tensor xb = Slice(x, 0, b, 1).Reshape({x.size(1), x.size(2)});
    Tensor ob = MatMul(a, xb);
    std::copy(ob.data(), ob.data() + ob.numel(),
              out.data() + b * ob.numel());
  }
  return out;
}

class SparseKernelsTest : public SeededTest {};

// ------------------------------------------------------------ kernels ----

TEST_F(SparseKernelsTest, SpMMIntoMatchesReferenceAcrossShapesAndBeta) {
  for (int64_t rows : {1, 3, 7, 17, 31}) {
    for (int64_t cols : {2, 5, 13}) {
      for (int64_t f : {1, 4, 9}) {
        CsrMatrix a = RandomCsr(rows, cols, 0.4, &rng_);
        Tensor x = Tensor::Randn({cols, f}, &rng_);
        Tensor ref = RefSpMM(a.ToDense(), x, false);
        EXPECT_TENSOR_NEAR(SpMM(a, x), ref, 1e-4f);
        // beta = 1 accumulates onto existing contents.
        Tensor acc = Tensor::Randn({rows, f}, &rng_);
        Tensor expected = Add(acc, ref);
        SpMMInto(a, x, 1.0f, &acc);
        EXPECT_TENSOR_NEAR(acc, expected, 1e-4f);
        // beta = 0 overwrites uninitialized storage.
        Tensor raw({rows, f});
        SpMMInto(a, x, 0.0f, &raw);
        EXPECT_TENSOR_NEAR(raw, ref, 1e-4f);
      }
    }
  }
}

TEST_F(SparseKernelsTest, SpMMBatchedMatchesPerItemReference) {
  CsrMatrix a = RandomCsr(11, 7, 0.35, &rng_);
  Tensor x = Tensor::Randn({3, 7, 5}, &rng_);
  EXPECT_TENSOR_NEAR(SpMM(a, x), RefSpMM(a.ToDense(), x, false), 1e-4f);
}

TEST_F(SparseKernelsTest, SpMMPatternMatchesCsrAndTransposeReference) {
  for (int64_t rows : {2, 5, 13, 29}) {
    CsrMatrix a = RandomCsr(rows, 9, 0.4, &rng_);
    auto p = CsrPattern::FromCsr(a);
    Tensor values = Tensor::FromVector({a.nnz()}, a.values());
    Tensor x = Tensor::Randn({9, 6}, &rng_);
    Tensor xt = Tensor::Randn({rows, 6}, &rng_);
    EXPECT_TENSOR_NEAR(SpMMPattern(*p, values, x, false),
                       RefSpMM(a.ToDense(), x, false), 1e-4f);
    EXPECT_TENSOR_NEAR(SpMMPattern(*p, values, xt, true),
                       RefSpMM(a.ToDense(), xt, true), 1e-4f);
  }
}

TEST_F(SparseKernelsTest, PatternTransposeMatchesTransposedCsr) {
  CsrMatrix a = RandomCsr(13, 8, 0.3, &rng_);
  auto p = CsrPattern::FromCsr(a);
  // The pattern's (t_row_ptr, t_col_idx, t_perm) must describe exactly
  // A^T: rebuilding values through t_perm reproduces Transposed().
  CsrMatrix at = a.Transposed();
  ASSERT_EQ(p->t_row_ptr, at.row_ptr());
  ASSERT_EQ(p->t_col_idx, at.col_idx());
  for (int64_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(a.values()[p->t_perm[k]], at.values()[k]);
  }
}

TEST_F(SparseKernelsTest, SddmmMatchesDenseReference) {
  CsrMatrix m = RandomCsr(7, 11, 0.4, &rng_);
  auto p = CsrPattern::FromCsr(m);
  Tensor a = Tensor::Randn({7, 5}, &rng_);
  Tensor b = Tensor::Randn({11, 5}, &rng_);
  Tensor out = Sddmm(*p, a, b);
  // Reference: (A B^T) sampled at the pattern.
  Tensor full = MatMul(a, Transpose2D(b));
  int64_t k = 0;
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t j = p->row_ptr[r]; j < p->row_ptr[r + 1]; ++j, ++k) {
      EXPECT_NEAR(out.data()[k], full.At({r, p->col_idx[j]}), 1e-4f);
    }
  }
}

TEST_F(SparseKernelsTest, SddmmBatchedSumsOverBatch) {
  CsrMatrix m = RandomCsr(6, 9, 0.4, &rng_);
  auto p = CsrPattern::FromCsr(m);
  Tensor a = Tensor::Randn({3, 6, 4}, &rng_);
  Tensor b = Tensor::Randn({3, 9, 4}, &rng_);
  Tensor got = Sddmm(*p, a, b);
  Tensor expected = Tensor::Zeros({p->nnz()});
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ab = Slice(a, 0, bi, 1).Reshape({6, 4});
    Tensor bb = Slice(b, 0, bi, 1).Reshape({9, 4});
    Tensor part = Sddmm(*p, ab, bb);
    AddInPlace(&expected, part);
  }
  EXPECT_TENSOR_NEAR(got, expected, 1e-4f);
}

// ------------------------------------------------------ sparsification ----

TEST_F(SparseKernelsTest, RowTopKKeepsLargestMagnitudeEntries) {
  Tensor m = Tensor::FromVector(
      {2, 4}, {0.1f, -3.0f, 2.0f, 0.5f, 1.0f, 1.0f, -1.0f, 0.0f});
  CsrMatrix top2 = RowTopK(m, 2);
  Tensor d = top2.ToDense();
  // Row 0: |-3| and |2| survive.
  EXPECT_TENSOR_NEAR(
      d, Tensor::FromVector(
             {2, 4}, {0.0f, -3.0f, 2.0f, 0.0f, 1.0f, 1.0f, 0.0f, 0.0f}),
      0.0f);
}

TEST_F(SparseKernelsTest, RowTopKTieBreaksTowardLowerColumn) {
  // All-equal row: top-2 must keep columns 0 and 1, deterministically.
  Tensor m = Tensor::Full({1, 5}, 0.7f);
  CsrMatrix top = RowTopK(m, 2);
  ASSERT_EQ(top.nnz(), 2);
  EXPECT_EQ(top.col_idx()[0], 0);
  EXPECT_EQ(top.col_idx()[1], 1);
}

TEST_F(SparseKernelsTest, RowTopKRenormalizePreservesRowStochastic) {
  Tensor m = SoftmaxLastAxis(Tensor::Randn({9, 13}, &rng_));
  CsrMatrix top = RowTopK(m, 4, /*renormalize=*/true);
  EXPECT_TRUE(dyhsl::testing::RowStochastic(top.ToDense(), 1e-5f));
}

TEST_F(SparseKernelsTest, RowTopKPatternMatchesReferenceConstruction) {
  // The one-pass hot path must produce the identical structure and values
  // as the RowTopK -> FromCsr reference route, including on ties.
  for (int64_t k : {1, 3, 7}) {
    Tensor m = Tensor::Randn({13, 7}, &rng_);
    m.data()[3] = m.data()[5];  // forced magnitude tie inside row 0
    auto ref = CsrPattern::FromCsr(RowTopK(m, k));
    Tensor values({13 * std::min<int64_t>(k, 7)});
    auto fast = RowTopKPattern(m.data(), 13, 7, k, values.data());
    EXPECT_EQ(fast->row_ptr, ref->row_ptr) << "k=" << k;
    EXPECT_EQ(fast->col_idx, ref->col_idx) << "k=" << k;
    EXPECT_EQ(fast->t_row_ptr, ref->t_row_ptr) << "k=" << k;
    EXPECT_EQ(fast->t_col_idx, ref->t_col_idx) << "k=" << k;
    // Values in pattern order equal the matrix entries at the coordinates.
    for (int64_t r = 0; r < 13; ++r) {
      for (int64_t j = fast->row_ptr[r]; j < fast->row_ptr[r + 1]; ++j) {
        EXPECT_EQ(values.data()[j], m.At({r, fast->col_idx[j]}));
      }
    }
  }
}

TEST_F(SparseKernelsTest, RowTopKClampsKToColumnCount) {
  Tensor m = Tensor::Randn({3, 4}, &rng_);
  CsrMatrix all = RowTopK(m, 99);
  EXPECT_TENSOR_NEAR(all.ToDense(), m, 0.0f);
}

TEST_F(SparseKernelsTest, RowThresholdDropsSmallEntriesAndAllowsEmptyRows) {
  Tensor m = Tensor::FromVector({2, 3}, {0.9f, -0.05f, 0.2f,
                                         0.01f, -0.02f, 0.0f});
  CsrMatrix kept = RowThreshold(m, 0.1f);
  EXPECT_EQ(kept.nnz(), 2);  // row 1 is entirely below threshold
  EXPECT_TENSOR_NEAR(
      kept.ToDense(),
      Tensor::FromVector({2, 3}, {0.9f, 0.0f, 0.2f, 0.0f, 0.0f, 0.0f}),
      0.0f);
}

// ------------------------------------------------------- determinism ----

#ifdef _OPENMP
TEST_F(SparseKernelsTest, SpMMBitDeterministicAcrossThreadCounts) {
  CsrMatrix a = RandomCsr(67, 67, 0.2, &rng_);
  Tensor x = Tensor::Randn({4, 67, 33}, &rng_);
  auto p = CsrPattern::FromCsr(a);
  Tensor values = Tensor::FromVector({a.nnz()}, a.values());
  int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  Tensor y1 = SpMM(a, x);
  Tensor t1 = SpMMPattern(*p, values, x.Reshape({4, 67, 33}), true);
  Tensor s1 = Sddmm(*p, x, x);
  omp_set_num_threads(4);
  Tensor y4 = SpMM(a, x);
  Tensor t4 = SpMMPattern(*p, values, x.Reshape({4, 67, 33}), true);
  Tensor s4 = Sddmm(*p, x, x);
  omp_set_num_threads(saved);
  EXPECT_TENSOR_EQ(y1, y4);
  EXPECT_TENSOR_EQ(t1, t4);
  EXPECT_TENSOR_EQ(s1, s4);
}
#endif

TEST_F(SparseKernelsTest, SpMMOutputLandsOnActiveWorkspace) {
  CsrMatrix a = RandomCsr(9, 9, 0.3, &rng_);
  Tensor x = Tensor::Randn({9, 4}, &rng_);
  Workspace workspace;
  {
    WorkspaceScope scope(&workspace);
    Tensor y = SpMM(a, x);
    EXPECT_GT(workspace.live_allocations(), 0);
  }
  workspace.Reset();
  EXPECT_EQ(workspace.live_allocations(), 0);
}

// ---------------------------------------------------------- autograd ----

float ToleranceForGradcheck() { return 5e-2f; }

ag::Variable ToScalar(const ag::Variable& v) { return ag::SumAll(v); }

TEST_F(SparseKernelsTest, SpMMConstantGradcheckBothDirections) {
  CsrMatrix a = RandomCsr(6, 5, 0.5, &rng_);
  ag::SparseConstant op(a);
  for (bool trans : {false, true}) {
    ag::Variable x(
        Tensor::Randn({trans ? a.rows() : a.cols(), 3}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(ag::SpMM(op, in[0], trans));
        },
        {x});
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, SparseDenseMatMulGradcheckValuesAndDense) {
  CsrMatrix a = RandomCsr(6, 7, 0.5, &rng_);
  auto p = CsrPattern::FromCsr(a);
  for (bool trans : {false, true}) {
    ag::Variable values(Tensor::Randn({p->nnz()}, &rng_), true);
    ag::Variable x(
        Tensor::Randn({trans ? p->rows : p->cols, 4}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(ag::SparseDenseMatMul(p, in[0], in[1], trans));
        },
        {values, x}, 1e-2f, ToleranceForGradcheck());
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, SparseDenseMatMulBatchedXGradcheck) {
  CsrMatrix a = RandomCsr(5, 6, 0.5, &rng_);
  auto p = CsrPattern::FromCsr(a);
  ag::Variable values(Tensor::Randn({p->nnz()}, &rng_), true);
  ag::Variable x(Tensor::Randn({2, 6, 3}, &rng_), true);
  auto report = ag::GradCheck(
      [&](const std::vector<ag::Variable>& in) {
        return ToScalar(ag::SparseDenseMatMul(p, in[0], in[1]));
      },
      {values, x});
  EXPECT_TRUE(report.ok) << report.max_rel_error;
}

TEST_F(SparseKernelsTest, BatchedSparseDenseMatMulGradcheck) {
  const int64_t batch = 2, rows = 6, cols = 5;
  ag::CsrPatternList patterns;
  for (int64_t b = 0; b < batch; ++b) {
    patterns.push_back(
        CsrPattern::FromCsr(RandomCsr(rows, cols, 0.5, &rng_)));
  }
  const int64_t nnz = patterns[0]->nnz();
  // Patterns may differ in nnz across batch items; regenerate the second
  // until they match the first (the op requires a rectangular layout).
  while (patterns[1]->nnz() != nnz) {
    patterns[1] = CsrPattern::FromCsr(RandomCsr(rows, cols, 0.5, &rng_));
  }
  for (bool trans : {false, true}) {
    ag::Variable values(Tensor::Randn({batch, nnz}, &rng_), true);
    ag::Variable x(
        Tensor::Randn({batch, trans ? rows : cols, 3}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(
              ag::BatchedSparseDenseMatMul(patterns, in[0], in[1], trans));
        },
        {values, x});
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, GatherSparseGradcheckAndTopKComposition) {
  // The full DhslBlock-style chain: dense Λ -> top-k patterns -> gathered
  // values -> sparse product. The gradient must reach the dense Λ leaf
  // only through the kept coordinates.
  ag::Variable lambda(Tensor::Randn({2, 5, 4}, &rng_), true);
  ag::CsrPatternList patterns;
  for (int64_t b = 0; b < 2; ++b) {
    patterns.push_back(CsrPattern::FromCsr(
        RowTopKSlice(lambda.value().data() + b * 20, 5, 4, 2)));
  }
  ag::Variable x(Tensor::Randn({2, 4, 3}, &rng_), true);
  auto report = ag::GradCheck(
      [&](const std::vector<ag::Variable>& in) {
        ag::Variable vals = ag::GatherSparse(in[0], patterns);
        return ToScalar(ag::BatchedSparseDenseMatMul(patterns, vals, in[1]));
      },
      {lambda, x});
  EXPECT_TRUE(report.ok) << report.max_rel_error;
  // Dropped coordinates receive exactly zero gradient.
  ag::Variable vals = ag::GatherSparse(lambda, patterns);
  ag::Variable y = ToScalar(ag::BatchedSparseDenseMatMul(patterns, vals, x));
  y.Backward();
  const Tensor& grad = lambda.grad();
  for (int64_t b = 0; b < 2; ++b) {
    const auto& p = *patterns[b];
    for (int64_t r = 0; r < 5; ++r) {
      std::vector<bool> kept(4, false);
      for (int64_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
        kept[p.col_idx[k]] = true;
      }
      for (int64_t c = 0; c < 4; ++c) {
        if (!kept[c]) EXPECT_EQ(grad.At({b, r, c}), 0.0f);
      }
    }
  }
}

TEST_F(SparseKernelsTest, SpMMVsDenseAgreementAtModelShapes) {
  // The acceptance bar of the sparse-first refactor: the sparse temporal
  // path and the densified reference agree to <= 1e-4 relative error at
  // paper-like shapes.
  CsrMatrix a = RandomCsr(207, 207, 0.05, &rng_).RowNormalized();
  ag::SparseConstant op(a);
  Tensor dense = a.ToDense();
  ag::Variable x(Tensor::Randn({4, 207, 64}, &rng_));
  Tensor via_sparse = ag::SpMM(op, x).value();
  Tensor via_dense = ag::BatchedMatMul(ag::Variable(dense), x).value();
  float max_abs = dyhsl::testing::MaxAbsDiff(via_sparse, via_dense);
  float scale = 0.0f;
  for (int64_t i = 0; i < via_dense.numel(); ++i) {
    scale = std::max(scale, std::fabs(via_dense.data()[i]));
  }
  EXPECT_LE(max_abs, 1e-4f * std::max(1.0f, scale));
}

// ---------------------------------------------------- SIMD dispatch ----

// Independent reference for the top-k contract: k largest |v|, ties toward
// the lower column, output in ascending column order.
std::vector<int64_t> RefTopKIndices(const float* row, int64_t n, int64_t k) {
  std::vector<int64_t> idx(n);
  for (int64_t i = 0; i < n; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](int64_t a, int64_t b) {
    float ma = std::fabs(row[a]), mb = std::fabs(row[b]);
    if (ma != mb) return ma > mb;
    return a < b;
  });
  idx.resize(k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

// The vector levels compiled in and supported by this machine (scalar is
// the reference they are compared against).
std::vector<simd::Level> SupportedVectorLevels() {
  std::vector<simd::Level> levels;
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx512) {
    levels.push_back(simd::Level::kAvx512);
  }
  return levels;
}

constexpr int64_t kPropertyWidths[] = {1, 2,  3,  5,  7,  8,  9,
                                       15, 16, 17, 31, 33, 64, 127};

TEST_F(SparseKernelsTest, SimdCountAndCompressBitIdenticalToScalar) {
  const simd::Ops& scalar = simd::OpsFor(simd::Level::kScalar);
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Ops& ops = simd::OpsFor(level);
    for (int64_t n : kPropertyWidths) {
      Tensor x = Tensor::Randn({n}, &rng_);
      // Plant exact-threshold ties so >= vs > disagreements surface.
      if (n >= 3) x.data()[n / 2] = 0.5f;
      if (n >= 5) x.data()[n - 1] = -0.5f;
      for (float t : {0.0f, 0.25f, 0.5f, 2.0f}) {
        ASSERT_EQ(ops.count_ge_abs(x.data(), n, t),
                  scalar.count_ge_abs(x.data(), n, t))
            << simd::LevelName(level) << " n=" << n << " t=" << t;
        std::vector<int32_t> got(n, -7), want(n, -7);
        int64_t ng = ops.compress_ge_abs(x.data(), n, t, got.data());
        int64_t nw = scalar.compress_ge_abs(x.data(), n, t, want.data());
        ASSERT_EQ(ng, nw) << simd::LevelName(level) << " n=" << n;
        for (int64_t i = 0; i < ng; ++i) ASSERT_EQ(got[i], want[i]);
      }
    }
  }
}

TEST_F(SparseKernelsTest, SimdTopKSelectMatchesReferenceAcrossWidthsAndK) {
  const simd::Ops& scalar = simd::OpsFor(simd::Level::kScalar);
  std::vector<const simd::Ops*> all = {&scalar};
  for (simd::Level level : SupportedVectorLevels()) {
    all.push_back(&simd::OpsFor(level));
  }
  for (int64_t n : kPropertyWidths) {
    Tensor x = Tensor::Randn({n}, &rng_);
    // Magnitude ties across sign and position (|x[1]| == |x[n-1]| etc.).
    if (n >= 4) {
      x.data()[1] = 0.9f;
      x.data()[n - 1] = -0.9f;
      x.data()[n / 2] = 0.9f;
    }
    std::vector<float> scratch(simd::TopKScratchFloats(n));
    for (int64_t k : std::vector<int64_t>{1, n / 2, n}) {
      if (k < 1) continue;
      std::vector<int64_t> want = RefTopKIndices(x.data(), n, k);
      for (const simd::Ops* ops : all) {
        std::vector<int64_t> got(k, -1);
        ops->topk_select(x.data(), n, k, scratch.data(), got.data());
        ASSERT_EQ(got, want) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST_F(SparseKernelsTest, SimdTopKSelectAllEqualRowTiesTowardLowestColumns) {
  const simd::Ops& scalar = simd::OpsFor(simd::Level::kScalar);
  for (int64_t n : {3, 16, 33}) {
    Tensor x = Tensor::Full({n}, 0.7f);
    std::vector<float> scratch(simd::TopKScratchFloats(n));
    for (int64_t k : {int64_t{1}, n / 2, n}) {
      if (k < 1) continue;
      std::vector<int64_t> want(k);
      for (int64_t i = 0; i < k; ++i) want[i] = i;
      std::vector<int64_t> got(k);
      scalar.topk_select(x.data(), n, k, scratch.data(), got.data());
      EXPECT_EQ(got, want);
      for (simd::Level level : SupportedVectorLevels()) {
        simd::OpsFor(level).topk_select(x.data(), n, k, scratch.data(),
                                        got.data());
        EXPECT_EQ(got, want) << simd::LevelName(level) << " n=" << n;
      }
    }
  }
}

TEST_F(SparseKernelsTest, SimdPrimitivesHandleDenormalsIdentically) {
  // The kernels never enable FTZ/DAZ, so denormal magnitudes must order
  // and count identically at every level.
  const simd::Ops& scalar = simd::OpsFor(simd::Level::kScalar);
  const int64_t n = 37;
  Tensor x({n});
  const float denorm = std::ldexp(1.0f, -140);  // far below FLT_MIN
  for (int64_t i = 0; i < n; ++i) {
    x.data()[i] = static_cast<float>((i * 13) % n - n / 2) * denorm;
  }
  std::vector<float> scratch(simd::TopKScratchFloats(n));
  std::vector<int64_t> want = RefTopKIndices(x.data(), n, 5);
  const float t = 3.0f * denorm;
  for (simd::Level level : SupportedVectorLevels()) {
    const simd::Ops& ops = simd::OpsFor(level);
    EXPECT_EQ(ops.count_ge_abs(x.data(), n, t),
              scalar.count_ge_abs(x.data(), n, t));
    std::vector<int64_t> got(5);
    ops.topk_select(x.data(), n, 5, scratch.data(), got.data());
    EXPECT_EQ(got, want) << simd::LevelName(level);
  }
}

TEST_F(SparseKernelsTest, SimdTileRowUpdateBitIdenticalAcrossLevels) {
  const simd::Ops& scalar = simd::OpsFor(simd::Level::kScalar);
  for (int64_t n = 1; n <= simd::kMaxLanes; ++n) {
    Tensor acc = Tensor::Randn({simd::kMaxLanes}, &rng_);
    Tensor base = Tensor::Randn({simd::kMaxLanes}, &rng_);
    for (float beta : {0.0f, 1.0f, -0.375f}) {
      Tensor want = base.Clone();
      scalar.tile_row_update(acc.data(), want.data(), n, beta);
      for (simd::Level level : SupportedVectorLevels()) {
        Tensor got = base.Clone();
        simd::OpsFor(level).tile_row_update(acc.data(), got.data(), n, beta);
        EXPECT_TENSOR_EQ(got, want)
            << simd::LevelName(level) << " n=" << n << " beta=" << beta;
        // Lanes past n must be untouched (masked stores).
        for (int64_t j = n; j < simd::kMaxLanes; ++j) {
          EXPECT_EQ(got.data()[j], base.data()[j]);
        }
      }
    }
  }
}

TEST_F(SparseKernelsTest, SimdActiveLevelIsAtMostDetected) {
  EXPECT_LE(static_cast<int>(simd::ActiveLevel()),
            static_cast<int>(simd::DetectedLevel()));
  EXPECT_NE(simd::LevelName(simd::ActiveLevel()), nullptr);
}

// ---------------------------------------------------- pattern cache ----

TEST_F(SparseKernelsTest, CountDriftedRowsZeroOnUnchangedData) {
  Tensor m = Tensor::Randn({11, 9}, &rng_);
  auto p = RowTopKPattern(m.data(), 11, 9, 3);
  EXPECT_EQ(CountDriftedRows(*p, m.data()), 0);
}

TEST_F(SparseKernelsTest, CountDriftedRowsDetectsMarginFlip) {
  Tensor m = Tensor::Randn({8, 6}, &rng_);
  auto p = RowTopKPattern(m.data(), 8, 6, 2);
  // Promote a dropped entry of row 3 above the weakest kept one.
  const float* row = m.data() + 3 * 6;
  std::vector<bool> kept(6, false);
  for (int64_t j = p->row_ptr[3]; j < p->row_ptr[4]; ++j) {
    kept[p->col_idx[j]] = true;
  }
  float max_mag = 0.0f;
  for (int64_t c = 0; c < 6; ++c) {
    max_mag = std::max(max_mag, std::fabs(row[c]));
  }
  for (int64_t c = 0; c < 6; ++c) {
    if (!kept[c]) {
      m.data()[3 * 6 + c] = 2.0f * max_mag + 1.0f;
      break;
    }
  }
  EXPECT_EQ(CountDriftedRows(*p, m.data()), 1);
}

TEST_F(SparseKernelsTest, PatternCacheExactReuseReturnsSamePattern) {
  TopKPatternCache cache;
  Tensor m = Tensor::Randn({10, 8}, &rng_);
  auto first = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  auto second = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  EXPECT_EQ(first.get(), second.get());  // same cached object
  EXPECT_EQ(cache.stats().selects, 1);
  EXPECT_EQ(cache.stats().reuses, 1);
  EXPECT_EQ(cache.stats().drifted_rows, 0);
}

TEST_F(SparseKernelsTest, PatternCacheReselectsPastDriftThreshold) {
  TopKPatternCache::Options opts;
  opts.drift_threshold = 0.05f;  // 10 rows -> at most 0 drifted rows pass
  TopKPatternCache cache(opts);
  Tensor m = Tensor::Randn({10, 8}, &rng_);
  auto first = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  // Rewrite two rows entirely: well past the threshold.
  for (int64_t i = 0; i < 16; ++i) m.data()[i] = 100.0f + i;
  auto second = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(cache.stats().selects, 1);  // only the cold one
  EXPECT_EQ(cache.stats().drift_reselects, 1);
  EXPECT_EQ(cache.stats().reuses, 0);
  // The re-selected pattern equals a fresh selection.
  auto fresh = RowTopKPattern(m.data(), 10, 8, 3);
  EXPECT_EQ(second->col_idx, fresh->col_idx);
}

TEST_F(SparseKernelsTest, PatternCacheToleratesDriftUnderThreshold) {
  TopKPatternCache::Options opts;
  opts.drift_threshold = 0.5f;  // 10 rows -> up to 5 drifted rows reuse
  TopKPatternCache cache(opts);
  Tensor m = Tensor::Randn({10, 8}, &rng_);
  auto first = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  for (int64_t i = 0; i < 8; ++i) m.data()[i] = 50.0f + i;  // one row
  auto second = cache.SelectOrReuse(0, m.data(), 10, 8, 3);
  EXPECT_EQ(first.get(), second.get());  // stale but within tolerance
  EXPECT_EQ(cache.stats().reuses, 1);
  EXPECT_EQ(cache.stats().drifted_rows, 1);
}

TEST_F(SparseKernelsTest, PatternCacheKeysOnSlotAndShape) {
  TopKPatternCache cache;
  Tensor a = Tensor::Randn({6, 5}, &rng_);
  Tensor b = Tensor::Randn({6, 5}, &rng_);
  auto pa = cache.SelectOrReuse(0, a.data(), 6, 5, 2);
  auto pb = cache.SelectOrReuse(1, b.data(), 6, 5, 2);
  EXPECT_EQ(cache.stats().selects, 2);  // slots are independent streams
  EXPECT_EQ(cache.SelectOrReuse(0, a.data(), 6, 5, 2).get(), pa.get());
  EXPECT_EQ(cache.SelectOrReuse(1, b.data(), 6, 5, 2).get(), pb.get());
  // A different k on the same slot is a different stream, not a reuse.
  cache.SelectOrReuse(0, a.data(), 6, 5, 3);
  EXPECT_EQ(cache.stats().selects, 3);
  cache.Clear();
  cache.SelectOrReuse(0, a.data(), 6, 5, 2);
  EXPECT_EQ(cache.stats().selects, 4);  // cold again after Clear
}

TEST_F(SparseKernelsTest, PatternCacheRejectsBadThreshold) {
  TopKPatternCache::Options opts;
  opts.drift_threshold = 1.5f;
  EXPECT_DEATH(TopKPatternCache cache(opts), "drift_threshold");
}

TEST_F(SparseKernelsTest, CachedPatternGradientsMatchFreshWhenNoDrift) {
  // A zero-drift reuse must be invisible to autograd: same forward, same
  // gradients, bit for bit.
  ag::Variable lambda(Tensor::Randn({2, 6, 5}, &rng_), true);
  TopKPatternCache cache;
  ag::CsrPatternList fresh, cached;
  for (int64_t b = 0; b < 2; ++b) {
    const float* slab = lambda.value().data() + b * 30;
    fresh.push_back(RowTopKPattern(slab, 6, 5, 2));
    cache.SelectOrReuse(b, slab, 6, 5, 2);          // warm the cache
    cached.push_back(cache.SelectOrReuse(b, slab, 6, 5, 2));  // reuse
  }
  EXPECT_EQ(cache.stats().reuses, 2);
  ag::Variable x(Tensor::Randn({2, 5, 3}, &rng_), false);
  auto run = [&](const ag::CsrPatternList& patterns) {
    lambda.ZeroGrad();
    ag::Variable vals = ag::GatherSparse(lambda, patterns);
    ag::Variable y =
        ToScalar(ag::BatchedSparseDenseMatMul(patterns, vals, x));
    y.Backward();
    return std::make_pair(y.value().Clone(), lambda.grad().Clone());
  };
  auto [y_fresh, g_fresh] = run(fresh);
  auto [y_cached, g_cached] = run(cached);
  EXPECT_TENSOR_EQ(y_cached, y_fresh);
  EXPECT_TENSOR_EQ(g_cached, g_fresh);
}

// ------------------------------------------------------ row threshold ----

TEST_F(SparseKernelsTest, RowThresholdRejectsNegativeThreshold) {
  Tensor m = Tensor::Randn({2, 3}, &rng_);
  EXPECT_DEATH(RowThreshold(m, -0.5f), "threshold");
}

TEST_F(SparseKernelsTest, RowThresholdRenormalizeLeavesEmptyRowsFinite) {
  // Row 1 loses every entry; renormalize must skip it (no 0/0) and leave
  // the output NaN-free. Row 2's kept sum is negative, which the guard
  // also refuses to scale by.
  Tensor m = Tensor::FromVector({3, 3}, {0.6f, 0.3f, 0.05f,     // kept: 2
                                         0.01f, -0.02f, 0.03f,  // kept: 0
                                         -0.9f, 0.2f, 0.01f});  // sum < 0
  CsrMatrix kept = RowThreshold(m, 0.1f, /*renormalize=*/true);
  Tensor d = kept.ToDense();
  for (int64_t i = 0; i < d.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(d.data()[i])) << "index " << i;
  }
  // Row 0 renormalizes to its original sum; row 1 stays empty.
  EXPECT_NEAR(d.At({0, 0}) + d.At({0, 1}), 0.95f, 1e-6f);
  for (int64_t c = 0; c < 3; ++c) EXPECT_EQ(d.At({1, c}), 0.0f);
}

}  // namespace
}  // namespace dyhsl::tensor
