// Kernel-equivalence and autograd suite for the sparse execution path
// (src/tensor/sparse.h, src/autograd/sparse.h).
//
// Mirrors tensor_kernels_test: every kernel is checked against an
// independent naive reference across odd/prime shapes, both beta modes and
// batch layouts, plus OpenMP thread-count bit-determinism; every taped op
// is finite-difference gradchecked (dense side via the transpose SpMM,
// sparse-values side via SDDMM).

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/autograd/sparse.h"
#include "src/autograd/variable.h"
#include "src/core/rng.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"
#include "src/tensor/workspace.h"
#include "tests/testing_utils.h"

namespace dyhsl::tensor {
namespace {

namespace ag = ::dyhsl::autograd;
using ::dyhsl::testing::SeededTest;

// Random CSR with ~`density` fill; at least one entry so tests are not
// vacuous. Odd densities leave empty rows/cols, exercising the zero-row
// paths of every kernel.
CsrMatrix RandomCsr(int64_t rows, int64_t cols, double density, Rng* rng) {
  std::vector<Triplet> trips;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng->Bernoulli(density)) trips.push_back({r, c, rng->Gaussian()});
    }
  }
  if (trips.empty()) trips.push_back({0, 0, 1.0f});
  return CsrMatrix::FromTriplets(rows, cols, std::move(trips));
}

// Independent dense reference for op(A) X over 2-D or 3-D X.
Tensor RefSpMM(const Tensor& a_dense, const Tensor& x, bool trans_a) {
  Tensor a = trans_a ? Transpose2D(a_dense) : a_dense;
  if (x.dim() == 2) return MatMul(a, x);
  Tensor out({x.size(0), a.size(0), x.size(2)});
  for (int64_t b = 0; b < x.size(0); ++b) {
    Tensor xb = Slice(x, 0, b, 1).Reshape({x.size(1), x.size(2)});
    Tensor ob = MatMul(a, xb);
    std::copy(ob.data(), ob.data() + ob.numel(),
              out.data() + b * ob.numel());
  }
  return out;
}

class SparseKernelsTest : public SeededTest {};

// ------------------------------------------------------------ kernels ----

TEST_F(SparseKernelsTest, SpMMIntoMatchesReferenceAcrossShapesAndBeta) {
  for (int64_t rows : {1, 3, 7, 17, 31}) {
    for (int64_t cols : {2, 5, 13}) {
      for (int64_t f : {1, 4, 9}) {
        CsrMatrix a = RandomCsr(rows, cols, 0.4, &rng_);
        Tensor x = Tensor::Randn({cols, f}, &rng_);
        Tensor ref = RefSpMM(a.ToDense(), x, false);
        EXPECT_TENSOR_NEAR(SpMM(a, x), ref, 1e-4f);
        // beta = 1 accumulates onto existing contents.
        Tensor acc = Tensor::Randn({rows, f}, &rng_);
        Tensor expected = Add(acc, ref);
        SpMMInto(a, x, 1.0f, &acc);
        EXPECT_TENSOR_NEAR(acc, expected, 1e-4f);
        // beta = 0 overwrites uninitialized storage.
        Tensor raw({rows, f});
        SpMMInto(a, x, 0.0f, &raw);
        EXPECT_TENSOR_NEAR(raw, ref, 1e-4f);
      }
    }
  }
}

TEST_F(SparseKernelsTest, SpMMBatchedMatchesPerItemReference) {
  CsrMatrix a = RandomCsr(11, 7, 0.35, &rng_);
  Tensor x = Tensor::Randn({3, 7, 5}, &rng_);
  EXPECT_TENSOR_NEAR(SpMM(a, x), RefSpMM(a.ToDense(), x, false), 1e-4f);
}

TEST_F(SparseKernelsTest, SpMMPatternMatchesCsrAndTransposeReference) {
  for (int64_t rows : {2, 5, 13, 29}) {
    CsrMatrix a = RandomCsr(rows, 9, 0.4, &rng_);
    auto p = CsrPattern::FromCsr(a);
    Tensor values = Tensor::FromVector({a.nnz()}, a.values());
    Tensor x = Tensor::Randn({9, 6}, &rng_);
    Tensor xt = Tensor::Randn({rows, 6}, &rng_);
    EXPECT_TENSOR_NEAR(SpMMPattern(*p, values, x, false),
                       RefSpMM(a.ToDense(), x, false), 1e-4f);
    EXPECT_TENSOR_NEAR(SpMMPattern(*p, values, xt, true),
                       RefSpMM(a.ToDense(), xt, true), 1e-4f);
  }
}

TEST_F(SparseKernelsTest, PatternTransposeMatchesTransposedCsr) {
  CsrMatrix a = RandomCsr(13, 8, 0.3, &rng_);
  auto p = CsrPattern::FromCsr(a);
  // The pattern's (t_row_ptr, t_col_idx, t_perm) must describe exactly
  // A^T: rebuilding values through t_perm reproduces Transposed().
  CsrMatrix at = a.Transposed();
  ASSERT_EQ(p->t_row_ptr, at.row_ptr());
  ASSERT_EQ(p->t_col_idx, at.col_idx());
  for (int64_t k = 0; k < a.nnz(); ++k) {
    EXPECT_EQ(a.values()[p->t_perm[k]], at.values()[k]);
  }
}

TEST_F(SparseKernelsTest, SddmmMatchesDenseReference) {
  CsrMatrix m = RandomCsr(7, 11, 0.4, &rng_);
  auto p = CsrPattern::FromCsr(m);
  Tensor a = Tensor::Randn({7, 5}, &rng_);
  Tensor b = Tensor::Randn({11, 5}, &rng_);
  Tensor out = Sddmm(*p, a, b);
  // Reference: (A B^T) sampled at the pattern.
  Tensor full = MatMul(a, Transpose2D(b));
  int64_t k = 0;
  for (int64_t r = 0; r < 7; ++r) {
    for (int64_t j = p->row_ptr[r]; j < p->row_ptr[r + 1]; ++j, ++k) {
      EXPECT_NEAR(out.data()[k], full.At({r, p->col_idx[j]}), 1e-4f);
    }
  }
}

TEST_F(SparseKernelsTest, SddmmBatchedSumsOverBatch) {
  CsrMatrix m = RandomCsr(6, 9, 0.4, &rng_);
  auto p = CsrPattern::FromCsr(m);
  Tensor a = Tensor::Randn({3, 6, 4}, &rng_);
  Tensor b = Tensor::Randn({3, 9, 4}, &rng_);
  Tensor got = Sddmm(*p, a, b);
  Tensor expected = Tensor::Zeros({p->nnz()});
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ab = Slice(a, 0, bi, 1).Reshape({6, 4});
    Tensor bb = Slice(b, 0, bi, 1).Reshape({9, 4});
    Tensor part = Sddmm(*p, ab, bb);
    AddInPlace(&expected, part);
  }
  EXPECT_TENSOR_NEAR(got, expected, 1e-4f);
}

// ------------------------------------------------------ sparsification ----

TEST_F(SparseKernelsTest, RowTopKKeepsLargestMagnitudeEntries) {
  Tensor m = Tensor::FromVector(
      {2, 4}, {0.1f, -3.0f, 2.0f, 0.5f, 1.0f, 1.0f, -1.0f, 0.0f});
  CsrMatrix top2 = RowTopK(m, 2);
  Tensor d = top2.ToDense();
  // Row 0: |-3| and |2| survive.
  EXPECT_TENSOR_NEAR(
      d, Tensor::FromVector(
             {2, 4}, {0.0f, -3.0f, 2.0f, 0.0f, 1.0f, 1.0f, 0.0f, 0.0f}),
      0.0f);
}

TEST_F(SparseKernelsTest, RowTopKTieBreaksTowardLowerColumn) {
  // All-equal row: top-2 must keep columns 0 and 1, deterministically.
  Tensor m = Tensor::Full({1, 5}, 0.7f);
  CsrMatrix top = RowTopK(m, 2);
  ASSERT_EQ(top.nnz(), 2);
  EXPECT_EQ(top.col_idx()[0], 0);
  EXPECT_EQ(top.col_idx()[1], 1);
}

TEST_F(SparseKernelsTest, RowTopKRenormalizePreservesRowStochastic) {
  Tensor m = SoftmaxLastAxis(Tensor::Randn({9, 13}, &rng_));
  CsrMatrix top = RowTopK(m, 4, /*renormalize=*/true);
  EXPECT_TRUE(dyhsl::testing::RowStochastic(top.ToDense(), 1e-5f));
}

TEST_F(SparseKernelsTest, RowTopKPatternMatchesReferenceConstruction) {
  // The one-pass hot path must produce the identical structure and values
  // as the RowTopK -> FromCsr reference route, including on ties.
  for (int64_t k : {1, 3, 7}) {
    Tensor m = Tensor::Randn({13, 7}, &rng_);
    m.data()[3] = m.data()[5];  // forced magnitude tie inside row 0
    auto ref = CsrPattern::FromCsr(RowTopK(m, k));
    Tensor values({13 * std::min<int64_t>(k, 7)});
    auto fast = RowTopKPattern(m.data(), 13, 7, k, values.data());
    EXPECT_EQ(fast->row_ptr, ref->row_ptr) << "k=" << k;
    EXPECT_EQ(fast->col_idx, ref->col_idx) << "k=" << k;
    EXPECT_EQ(fast->t_row_ptr, ref->t_row_ptr) << "k=" << k;
    EXPECT_EQ(fast->t_col_idx, ref->t_col_idx) << "k=" << k;
    // Values in pattern order equal the matrix entries at the coordinates.
    for (int64_t r = 0; r < 13; ++r) {
      for (int64_t j = fast->row_ptr[r]; j < fast->row_ptr[r + 1]; ++j) {
        EXPECT_EQ(values.data()[j], m.At({r, fast->col_idx[j]}));
      }
    }
  }
}

TEST_F(SparseKernelsTest, RowTopKClampsKToColumnCount) {
  Tensor m = Tensor::Randn({3, 4}, &rng_);
  CsrMatrix all = RowTopK(m, 99);
  EXPECT_TENSOR_NEAR(all.ToDense(), m, 0.0f);
}

TEST_F(SparseKernelsTest, RowThresholdDropsSmallEntriesAndAllowsEmptyRows) {
  Tensor m = Tensor::FromVector({2, 3}, {0.9f, -0.05f, 0.2f,
                                         0.01f, -0.02f, 0.0f});
  CsrMatrix kept = RowThreshold(m, 0.1f);
  EXPECT_EQ(kept.nnz(), 2);  // row 1 is entirely below threshold
  EXPECT_TENSOR_NEAR(
      kept.ToDense(),
      Tensor::FromVector({2, 3}, {0.9f, 0.0f, 0.2f, 0.0f, 0.0f, 0.0f}),
      0.0f);
}

// ------------------------------------------------------- determinism ----

#ifdef _OPENMP
TEST_F(SparseKernelsTest, SpMMBitDeterministicAcrossThreadCounts) {
  CsrMatrix a = RandomCsr(67, 67, 0.2, &rng_);
  Tensor x = Tensor::Randn({4, 67, 33}, &rng_);
  auto p = CsrPattern::FromCsr(a);
  Tensor values = Tensor::FromVector({a.nnz()}, a.values());
  int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  Tensor y1 = SpMM(a, x);
  Tensor t1 = SpMMPattern(*p, values, x.Reshape({4, 67, 33}), true);
  Tensor s1 = Sddmm(*p, x, x);
  omp_set_num_threads(4);
  Tensor y4 = SpMM(a, x);
  Tensor t4 = SpMMPattern(*p, values, x.Reshape({4, 67, 33}), true);
  Tensor s4 = Sddmm(*p, x, x);
  omp_set_num_threads(saved);
  EXPECT_TENSOR_EQ(y1, y4);
  EXPECT_TENSOR_EQ(t1, t4);
  EXPECT_TENSOR_EQ(s1, s4);
}
#endif

TEST_F(SparseKernelsTest, SpMMOutputLandsOnActiveWorkspace) {
  CsrMatrix a = RandomCsr(9, 9, 0.3, &rng_);
  Tensor x = Tensor::Randn({9, 4}, &rng_);
  Workspace workspace;
  {
    WorkspaceScope scope(&workspace);
    Tensor y = SpMM(a, x);
    EXPECT_GT(workspace.live_allocations(), 0);
  }
  workspace.Reset();
  EXPECT_EQ(workspace.live_allocations(), 0);
}

// ---------------------------------------------------------- autograd ----

float ToleranceForGradcheck() { return 5e-2f; }

ag::Variable ToScalar(const ag::Variable& v) { return ag::SumAll(v); }

TEST_F(SparseKernelsTest, SpMMConstantGradcheckBothDirections) {
  CsrMatrix a = RandomCsr(6, 5, 0.5, &rng_);
  ag::SparseConstant op(a);
  for (bool trans : {false, true}) {
    ag::Variable x(
        Tensor::Randn({trans ? a.rows() : a.cols(), 3}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(ag::SpMM(op, in[0], trans));
        },
        {x});
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, SparseDenseMatMulGradcheckValuesAndDense) {
  CsrMatrix a = RandomCsr(6, 7, 0.5, &rng_);
  auto p = CsrPattern::FromCsr(a);
  for (bool trans : {false, true}) {
    ag::Variable values(Tensor::Randn({p->nnz()}, &rng_), true);
    ag::Variable x(
        Tensor::Randn({trans ? p->rows : p->cols, 4}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(ag::SparseDenseMatMul(p, in[0], in[1], trans));
        },
        {values, x}, 1e-2f, ToleranceForGradcheck());
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, SparseDenseMatMulBatchedXGradcheck) {
  CsrMatrix a = RandomCsr(5, 6, 0.5, &rng_);
  auto p = CsrPattern::FromCsr(a);
  ag::Variable values(Tensor::Randn({p->nnz()}, &rng_), true);
  ag::Variable x(Tensor::Randn({2, 6, 3}, &rng_), true);
  auto report = ag::GradCheck(
      [&](const std::vector<ag::Variable>& in) {
        return ToScalar(ag::SparseDenseMatMul(p, in[0], in[1]));
      },
      {values, x});
  EXPECT_TRUE(report.ok) << report.max_rel_error;
}

TEST_F(SparseKernelsTest, BatchedSparseDenseMatMulGradcheck) {
  const int64_t batch = 2, rows = 6, cols = 5;
  ag::CsrPatternList patterns;
  for (int64_t b = 0; b < batch; ++b) {
    patterns.push_back(
        CsrPattern::FromCsr(RandomCsr(rows, cols, 0.5, &rng_)));
  }
  const int64_t nnz = patterns[0]->nnz();
  // Patterns may differ in nnz across batch items; regenerate the second
  // until they match the first (the op requires a rectangular layout).
  while (patterns[1]->nnz() != nnz) {
    patterns[1] = CsrPattern::FromCsr(RandomCsr(rows, cols, 0.5, &rng_));
  }
  for (bool trans : {false, true}) {
    ag::Variable values(Tensor::Randn({batch, nnz}, &rng_), true);
    ag::Variable x(
        Tensor::Randn({batch, trans ? rows : cols, 3}, &rng_), true);
    auto report = ag::GradCheck(
        [&](const std::vector<ag::Variable>& in) {
          return ToScalar(
              ag::BatchedSparseDenseMatMul(patterns, in[0], in[1], trans));
        },
        {values, x});
    EXPECT_TRUE(report.ok) << "trans=" << trans
                           << " max_rel=" << report.max_rel_error;
  }
}

TEST_F(SparseKernelsTest, GatherSparseGradcheckAndTopKComposition) {
  // The full DhslBlock-style chain: dense Λ -> top-k patterns -> gathered
  // values -> sparse product. The gradient must reach the dense Λ leaf
  // only through the kept coordinates.
  ag::Variable lambda(Tensor::Randn({2, 5, 4}, &rng_), true);
  ag::CsrPatternList patterns;
  for (int64_t b = 0; b < 2; ++b) {
    patterns.push_back(CsrPattern::FromCsr(
        RowTopKSlice(lambda.value().data() + b * 20, 5, 4, 2)));
  }
  ag::Variable x(Tensor::Randn({2, 4, 3}, &rng_), true);
  auto report = ag::GradCheck(
      [&](const std::vector<ag::Variable>& in) {
        ag::Variable vals = ag::GatherSparse(in[0], patterns);
        return ToScalar(ag::BatchedSparseDenseMatMul(patterns, vals, in[1]));
      },
      {lambda, x});
  EXPECT_TRUE(report.ok) << report.max_rel_error;
  // Dropped coordinates receive exactly zero gradient.
  ag::Variable vals = ag::GatherSparse(lambda, patterns);
  ag::Variable y = ToScalar(ag::BatchedSparseDenseMatMul(patterns, vals, x));
  y.Backward();
  const Tensor& grad = lambda.grad();
  for (int64_t b = 0; b < 2; ++b) {
    const auto& p = *patterns[b];
    for (int64_t r = 0; r < 5; ++r) {
      std::vector<bool> kept(4, false);
      for (int64_t k = p.row_ptr[r]; k < p.row_ptr[r + 1]; ++k) {
        kept[p.col_idx[k]] = true;
      }
      for (int64_t c = 0; c < 4; ++c) {
        if (!kept[c]) EXPECT_EQ(grad.At({b, r, c}), 0.0f);
      }
    }
  }
}

TEST_F(SparseKernelsTest, SpMMVsDenseAgreementAtModelShapes) {
  // The acceptance bar of the sparse-first refactor: the sparse temporal
  // path and the densified reference agree to <= 1e-4 relative error at
  // paper-like shapes.
  CsrMatrix a = RandomCsr(207, 207, 0.05, &rng_).RowNormalized();
  ag::SparseConstant op(a);
  Tensor dense = a.ToDense();
  ag::Variable x(Tensor::Randn({4, 207, 64}, &rng_));
  Tensor via_sparse = ag::SpMM(op, x).value();
  Tensor via_dense = ag::BatchedMatMul(ag::Variable(dense), x).value();
  float max_abs = dyhsl::testing::MaxAbsDiff(via_sparse, via_dense);
  float scale = 0.0f;
  for (int64_t i = 0; i < via_dense.numel(); ++i) {
    scale = std::max(scale, std::fabs(via_dense.data()[i]));
  }
  EXPECT_LE(max_abs, 1e-4f * std::max(1.0f, scale));
}

}  // namespace
}  // namespace dyhsl::tensor
