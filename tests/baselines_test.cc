// Baseline zoo tests.
//
// The parameterized suite sweeps every neural model in the registry through
// the same battery (shape, finiteness, gradient flow, determinism, one
// optimization step reduces loss); classical models get analytic checks.

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/inference.h"
#include "src/autograd/ops.h"
#include "src/baselines/classical.h"
#include "src/data/dataset.h"
#include "src/hypergraph/hypergraph.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"
#include "tests/testing_utils.h"

namespace dyhsl::train {
namespace {

namespace T = ::dyhsl::tensor;
namespace ag = ::dyhsl::autograd;

// One small dataset shared by every test in this file.
const data::TrafficDataset& SharedDataset() {
  static const data::TrafficDataset* dataset = [] {
    data::DatasetSpec spec = data::DatasetSpec::Pems08Like(0.1, 2, 5);
    return new data::TrafficDataset(data::TrafficDataset::Generate(spec));
  }();
  return *dataset;
}

tensor::Tensor SharedBatchX(int64_t b) {
  data::BatchIterator it(&SharedDataset(), {0, b}, b, false, 1);
  data::BatchIterator::Batch batch;
  EXPECT_TRUE(it.Next(&batch));
  return batch.x;
}

tensor::Tensor SharedBatchY(int64_t b) {
  data::BatchIterator it(&SharedDataset(), {0, b}, b, false, 1);
  data::BatchIterator::Batch batch;
  EXPECT_TRUE(it.Next(&batch));
  return batch.y;
}

class NeuralZooTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<ForecastModel> MakeModel() {
    ZooConfig cfg;
    cfg.hidden_dim = 8;
    cfg.seed = 13;
    return MakeNeuralModel(GetParam(),
                           ForecastTask::FromDataset(SharedDataset()), cfg);
  }
};

TEST_P(NeuralZooTest, ForwardShapeAndFinite) {
  auto model = MakeModel();
  tensor::Tensor x = SharedBatchX(2);
  ag::Variable y = model->Forward(x, /*training=*/false);
  const auto& ds = SharedDataset();
  EXPECT_EQ(y.shape(), (T::Shape{2, ds.horizon(), ds.num_nodes()}));
  for (float v : y.value().ToVector()) {
    ASSERT_TRUE(std::isfinite(v)) << model->name();
  }
}

TEST_P(NeuralZooTest, GradientReachesSomeParameters) {
  auto model = MakeModel();
  tensor::Tensor x = SharedBatchX(2);
  ag::Variable y = model->Forward(x, /*training=*/true);
  ag::MeanAll(y).Backward();
  int64_t with_grad = 0;
  for (const auto& p : model->Parameters()) {
    if (p.has_grad()) ++with_grad;
  }
  EXPECT_GT(with_grad, 0) << model->name();
  // The vast majority of parameters must participate.
  EXPECT_GE(with_grad * 10,
            static_cast<int64_t>(model->Parameters().size()) * 9)
      << model->name();
}

TEST_P(NeuralZooTest, DeterministicEvalForward) {
  auto model = MakeModel();
  tensor::Tensor x = SharedBatchX(2);
  T::Tensor y1 = model->Forward(x, false).value();
  T::Tensor y2 = model->Forward(x, false).value();
  EXPECT_TRUE(dyhsl::testing::TensorEq(y1, y2)) << model->name();
}

TEST_P(NeuralZooTest, GradFreeForwardBitIdenticalToTaped) {
  // Inference mode (no tape, in-place fast paths) must not change a
  // single output bit for any model in the zoo.
  auto model = MakeModel();
  tensor::Tensor x = SharedBatchX(2);
  T::Tensor taped = model->Forward(x, false).value();
  ag::InferenceModeGuard no_grad;
  T::Tensor grad_free = model->Forward(x, false).value();
  EXPECT_TRUE(dyhsl::testing::TensorEq(grad_free, taped)) << model->name();
}

TEST_P(NeuralZooTest, OneAdamStepReducesLoss) {
  auto model = MakeModel();
  tensor::Tensor x = SharedBatchX(4);
  tensor::Tensor y = SharedBatchY(4);
  optim::Adam adam(model->Parameters(), 5e-3f);
  float first_loss = 0.0f;
  float last_loss = 0.0f;
  for (int step = 0; step < 6; ++step) {
    adam.ZeroGrad();
    ag::Variable loss = MaskedMaeLoss(model->Forward(x, true), y);
    if (step == 0) first_loss = loss.value().data()[0];
    last_loss = loss.value().data()[0];
    loss.Backward();
    optim::ClipGradNorm(adam.params(), 5.0f);
    adam.Step();
  }
  EXPECT_LT(last_loss, first_loss) << model->name();
}

TEST_P(NeuralZooTest, ParameterCountPositiveAndConsistent) {
  auto model = MakeModel();
  int64_t total = 0;
  for (const auto& p : model->Parameters()) total += p.numel();
  EXPECT_EQ(total, model->ParameterCount());
  EXPECT_GT(total, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllNeuralModels, NeuralZooTest, ::testing::ValuesIn(NeuralModelKeys()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      }
      return out;
    });

class ClassicalZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ClassicalZooTest, FitPredictShapeAndFinite) {
  auto model = MakeClassicalModel(GetParam());
  const auto& ds = SharedDataset();
  model->Fit(ds);
  tensor::Tensor pred = model->Predict(ds, ds.test_range().begin);
  EXPECT_EQ(pred.shape(), (T::Shape{ds.horizon(), ds.num_nodes()}));
  for (float v : pred.ToVector()) {
    ASSERT_TRUE(std::isfinite(v)) << model->name();
    ASSERT_GE(v, 0.0f) << model->name() << " predicted negative flow";
  }
}

TEST_P(ClassicalZooTest, BeatsConstantZeroPredictor) {
  auto model = MakeClassicalModel(GetParam());
  const auto& ds = SharedDataset();
  model->Fit(ds);
  auto m = baselines::EvaluateClassical(model.get(), ds, ds.test_range(),
                                        /*max_windows=*/40);
  // A useful model must do noticeably better than predicting zero
  // (MAE of zero predictor = mean masked flow).
  metrics::MetricAccumulator zero_acc;
  for (int64_t t0 = ds.test_range().begin;
       t0 < std::min(ds.test_range().begin + 40, ds.test_range().end);
       ++t0) {
    tensor::Tensor truth = ds.MakeTarget(t0);
    zero_acc.Add(T::Tensor::Zeros(truth.shape()), truth);
  }
  EXPECT_LT(m.mae, 0.8 * zero_acc.Mae()) << model->name();
}

INSTANTIATE_TEST_SUITE_P(AllClassicalModels, ClassicalZooTest,
                         ::testing::ValuesIn(ClassicalModelKeys()));

TEST(HistoricalAverageTest, RecoversPeriodicSignal) {
  // On purely periodic data HA should be near-perfect.
  const auto& ds = SharedDataset();
  baselines::HistoricalAverage ha;
  ha.Fit(ds);
  auto m = baselines::EvaluateClassical(&ha, ds, ds.val_range(), 30);
  // Flow scale is O(150); periodic buckets must be far better than scale.
  EXPECT_LT(m.mae, 80.0);
}

TEST(ArimaTest, NearPerfectOnLinearTrend) {
  // Hand-build a tiny dataset-free check through the public API: ARIMA on
  // the shared dataset should produce finite forecasts with MAE below HA's
  // on short horizons (difference models track local level).
  const auto& ds = SharedDataset();
  baselines::Arima arima;
  arima.Fit(ds);
  tensor::Tensor p = arima.Predict(ds, ds.val_range().begin);
  // First horizon step should be close to the last observed value.
  float last_obs = ds.traffic().flow.At(
      {ds.val_range().begin + ds.history() - 1, 0});
  EXPECT_NEAR(p.At({0, 0}), last_obs, 60.0f);
}

TEST(VarTest, UsesCrossSensorInformation) {
  const auto& ds = SharedDataset();
  baselines::Var var(2, 1e-1f);
  var.Fit(ds);
  auto m = baselines::EvaluateClassical(&var, ds, ds.val_range(), 30);
  EXPECT_GT(m.mae, 0.0);
  EXPECT_LT(m.mae, 100.0);
}

// Largest |a - b| relative to the magnitude of `b` (floored at 1).
float MaxRelDiff(const T::Tensor& a, const T::Tensor& b) {
  float scale = 1.0f;
  for (int64_t i = 0; i < b.numel(); ++i) {
    scale = std::max(scale, std::fabs(b.data()[i]));
  }
  return dyhsl::testing::MaxAbsDiff(a, b) / scale;
}

// Sparse-vs-dense forward agreement (<= 1e-4 rel) for the structure
// operators two sparse-path baselines actually run — STGCN's symmetric
// normalized road adjacency and HGC-RNN's factored district-hypergraph
// propagation — at the models' (B*T, N, C) working shapes.
TEST(SparsePathAgreementTest, StgcnSymAdjMatchesDenseReference) {
  ForecastTask task = ForecastTask::FromDataset(SharedDataset());
  ag::SparseConstant op(task.spatial_adj.WithSelfLoops().SymNormalized());
  T::Tensor dense = op.matrix().ToDense();
  Rng rng(17);
  ag::Variable x(
      T::Tensor::Randn({2 * task.history, task.num_nodes, 16}, &rng));
  T::Tensor via_sparse = ag::SpMM(op, x).value();
  T::Tensor via_dense = ag::BatchedMatMul(ag::Variable(dense), x).value();
  EXPECT_LE(MaxRelDiff(via_sparse, via_dense), 1e-4f);
}

TEST(SparsePathAgreementTest, HgcRnnFactoredHypergraphMatchesDenseReference) {
  ForecastTask task = ForecastTask::FromDataset(SharedDataset());
  hypergraph::Hypergraph hg =
      hypergraph::Hypergraph::FromCommunities(task.district_labels);
  hypergraph::FactoredIncidence f = hg.FactoredOperator();
  // Dense reference: the materialized product operator as one GEMM.
  T::Tensor g_dense = hg.NormalizedOperator().matrix().ToDense();
  Rng rng(18);
  ag::Variable x(T::Tensor::Randn({3, task.num_nodes, 16}, &rng));
  T::Tensor via_sparse =
      ag::SpMM(f.edge_to_node, ag::SpMM(f.node_to_edge, x)).value();
  T::Tensor via_dense = ag::BatchedMatMul(ag::Variable(g_dense), x).value();
  EXPECT_LE(MaxRelDiff(via_sparse, via_dense), 1e-4f);
}

TEST(ModelZooTest, KeysAreUniqueAndConstructible) {
  std::set<std::string> seen;
  for (const std::string& k : NeuralModelKeys()) {
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
  }
  for (const std::string& k : ClassicalModelKeys()) {
    EXPECT_TRUE(seen.insert(k).second) << "duplicate key " << k;
  }
}

TEST(ModelZooTest, PaperReferenceLookup) {
  PaperRow row;
  ASSERT_TRUE(PaperTable3Reference("DyHSL", "SynPEMS04", &row));
  EXPECT_DOUBLE_EQ(row.mae, 17.66);
  ASSERT_TRUE(PaperTable3Reference("HA", "SynPEMS03", &row));
  EXPECT_DOUBLE_EQ(row.mae, 31.58);
  EXPECT_FALSE(PaperTable3Reference("NotAModel", "SynPEMS03", &row));
  EXPECT_FALSE(PaperTable3Reference("DyHSL", "NotADataset", &row));
}

TEST(ModelZooTest, DyHslHasCompetitiveParameterBudget) {
  // Table IV: DyHSL should not be the parameter-heaviest model by far.
  ForecastTask task = ForecastTask::FromDataset(SharedDataset());
  ZooConfig cfg;
  cfg.hidden_dim = 16;
  auto dyhsl = MakeNeuralModel("DyHSL", task, cfg);
  auto fclstm = MakeNeuralModel("FC-LSTM", task, cfg);
  EXPECT_GT(dyhsl->ParameterCount(), 0);
  // FC-LSTM scales with N^2-ish (N inputs x hidden x T' x N outputs), the
  // low-rank DyHSL should be comparable or smaller at equal hidden size.
  EXPECT_LT(dyhsl->ParameterCount(), 4 * fclstm->ParameterCount());
}

}  // namespace
}  // namespace dyhsl::train
