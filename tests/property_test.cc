// Property-based tests (parameterized sweeps) over the numeric substrate:
// invariants that must hold for arbitrary shapes, seeds and graph sizes,
// complementing the example-based unit tests.

#include <cmath>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/gradcheck.h"
#include "src/autograd/ops.h"
#include "src/data/dataset.h"
#include "src/graph/temporal_graph.h"
#include "src/metrics/metrics.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "tests/testing_utils.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;
namespace ag = ::dyhsl::autograd;

// ---------------------------------------------------------------------------
// Broadcasting: Add/Mul against a reference implementation for shape pairs.

using ShapePair = std::tuple<T::Shape, T::Shape>;

class BroadcastProperty : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastProperty, MatchesReferenceAndReducesBack) {
  auto [sa, sb] = GetParam();
  Rng rng(17);
  T::Tensor a = T::Tensor::Randn(sa, &rng);
  T::Tensor b = T::Tensor::Randn(sb, &rng);
  T::Tensor out = T::Add(a, b);
  T::Shape want_shape = T::BroadcastShape(sa, sb);
  EXPECT_EQ(out.shape(), want_shape);
  // Reference: iterate output indices, map back by modular arithmetic.
  std::vector<int64_t> idx(want_shape.size(), 0);
  for (int64_t flat = 0; flat < out.numel(); ++flat) {
    int64_t rem = flat;
    for (int64_t d = static_cast<int64_t>(want_shape.size()) - 1; d >= 0;
         --d) {
      idx[d] = rem % want_shape[d];
      rem /= want_shape[d];
    }
    auto source = [&](const T::Shape& s) {
      int64_t off = static_cast<int64_t>(want_shape.size() - s.size());
      int64_t sflat = 0;
      for (size_t d = 0; d < s.size(); ++d) {
        int64_t i = s[d] == 1 ? 0 : idx[off + d];
        sflat = sflat * s[d] + i;
      }
      return sflat;
    };
    EXPECT_FLOAT_EQ(out.data()[flat],
                    a.data()[source(sa)] + b.data()[source(sb)]);
  }
  // ReduceToShape inverts the expansion for gradient flow: reducing the
  // all-ones output back to each operand counts its fan-out.
  T::Tensor ones = T::Tensor::Ones(want_shape);
  T::Tensor ra = T::ReduceToShape(ones, sa);
  float fan_a = static_cast<float>(T::NumElements(want_shape)) /
                static_cast<float>(T::NumElements(sa));
  for (float v : ra.ToVector()) EXPECT_FLOAT_EQ(v, fan_a);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BroadcastProperty,
    ::testing::Values(
        ShapePair{{4}, {4}}, ShapePair{{3, 4}, {4}},
        ShapePair{{2, 3, 4}, {3, 1}}, ShapePair{{5, 1}, {1, 6}},
        ShapePair{{2, 1, 3}, {4, 1}}, ShapePair{{1}, {2, 2}},
        ShapePair{{2, 3, 1, 2}, {1, 4, 1}}));

// ---------------------------------------------------------------------------
// Matmul transpose lattice: all four flag combinations agree for random
// sizes (m, k, n).

using MatDims = std::tuple<int, int, int>;

class MatMulProperty : public ::testing::TestWithParam<MatDims> {};

TEST_P(MatMulProperty, TransposeFlagsConsistent) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  T::Tensor a = T::Tensor::Randn({m, k}, &rng);
  T::Tensor b = T::Tensor::Randn({k, n}, &rng);
  T::Tensor ref = T::MatMul(a, b);
  T::Tensor at = T::Transpose2D(a);
  T::Tensor bt = T::Transpose2D(b);
  for (auto [ta, tb] : std::vector<std::pair<bool, bool>>{
           {true, false}, {false, true}, {true, true}}) {
    T::Tensor got = T::MatMul(ta ? at : a, tb ? bt : b, ta, tb);
    EXPECT_TRUE(dyhsl::testing::TensorNear(got, ref, 1e-3f))
        << "ta=" << ta << " tb=" << tb;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, MatMulProperty,
                         ::testing::Values(MatDims{1, 1, 1}, MatDims{2, 3, 4},
                                           MatDims{7, 5, 3}, MatDims{16, 1, 9},
                                           MatDims{1, 8, 1},
                                           MatDims{13, 13, 13}));

// ---------------------------------------------------------------------------
// Concat/Slice round trip for arbitrary axes.

class MovementProperty : public ::testing::TestWithParam<int> {};

TEST_P(MovementProperty, ConcatSliceRoundTrip) {
  int axis = GetParam();
  Rng rng(5 + axis);
  T::Tensor a = T::Tensor::Randn({3, 4, 5}, &rng);
  T::Tensor b = T::Tensor::Randn({3, 4, 5}, &rng);
  T::Tensor cat = T::Concat({a, b}, axis);
  T::Tensor back_a = T::Slice(cat, axis, 0, a.size(axis));
  T::Tensor back_b = T::Slice(cat, axis, a.size(axis), b.size(axis));
  EXPECT_EQ(back_a.ToVector(), a.ToVector());
  EXPECT_EQ(back_b.ToVector(), b.ToVector());
}

TEST_P(MovementProperty, TransposeInvolution) {
  int axis = GetParam();
  (void)axis;
  Rng rng(23);
  T::Tensor a = T::Tensor::Randn({2, 3, 4}, &rng);
  std::vector<int64_t> perm{2, 0, 1};
  std::vector<int64_t> inverse{1, 2, 0};
  T::Tensor round =
      T::TransposePerm(T::TransposePerm(a, perm), inverse);
  EXPECT_EQ(round.ToVector(), a.ToVector());
}

INSTANTIATE_TEST_SUITE_P(Axes, MovementProperty, ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Sparse algebra: SpMM == dense matmul; transpose is an involution; row
// normalization makes rows stochastic — for random sparse matrices.

class SparseProperty : public ::testing::TestWithParam<int> {};

TEST_P(SparseProperty, AgreesWithDense) {
  Rng rng(GetParam());
  int64_t rows = 3 + rng.NextBelow(12);
  int64_t cols = 3 + rng.NextBelow(12);
  std::vector<T::Triplet> trips;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      if (rng.Bernoulli(0.3)) {
        trips.push_back({r, c, rng.Gaussian()});
      }
    }
  }
  auto m = T::CsrMatrix::FromTriplets(rows, cols, trips);
  T::Tensor x = T::Tensor::Randn({cols, 5}, &rng);
  T::Tensor via_sparse = T::SpMM(m, x);
  T::Tensor via_dense = T::MatMul(m.ToDense(), x);
  EXPECT_TENSOR_NEAR(via_sparse, via_dense, 1e-4f);
  // Transpose involution.
  T::Tensor tt = m.Transposed().Transposed().ToDense();
  T::Tensor orig = m.ToDense();
  EXPECT_EQ(tt.ToVector(), orig.ToVector());
}

TEST_P(SparseProperty, RowNormalizedIsStochastic) {
  Rng rng(100 + GetParam());
  int64_t n = 4 + rng.NextBelow(10);
  std::vector<T::Triplet> trips;
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      if (rng.Bernoulli(0.4)) {
        trips.push_back({r, c, rng.Uniform(0.1f, 2.0f)});
      }
    }
  }
  auto m = T::CsrMatrix::FromTriplets(n, n, trips).RowNormalized();
  T::Tensor dense = m.ToDense();
  EXPECT_TRUE(
      dyhsl::testing::RowStochastic(dense, 1e-4f, /*allow_zero_rows=*/true));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Temporal graph invariants across (N, T) combinations (Eq. 4).

using GraphDims = std::tuple<int, int>;

class TemporalGraphProperty : public ::testing::TestWithParam<GraphDims> {};

TEST_P(TemporalGraphProperty, StructureInvariants) {
  auto [n, steps] = GetParam();
  Rng rng(n * 31 + steps);
  std::vector<T::Triplet> trips;
  for (int64_t i = 0; i < n; ++i) {
    int64_t j = (i + 1) % n;
    trips.push_back({i, j, 1.0f});
    trips.push_back({j, i, 1.0f});
  }
  auto spatial = T::CsrMatrix::FromTriplets(n, n, trips);
  T::CsrMatrix tg = graph::BuildTemporalGraph(spatial, steps);
  ASSERT_EQ(tg.rows(), n * steps);
  // Every node has a self loop; temporal edges never skip steps; spatial
  // edges stay within their step.
  T::Tensor dense = tg.ToDense();
  for (int64_t t = 0; t < steps; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      int64_t row = graph::TemporalNodeIndex(t, i, n);
      EXPECT_GT(dense.At({row, row}), 0.0f);
      for (int64_t t2 = 0; t2 < steps; ++t2) {
        if (std::abs(t2 - t) <= 1) continue;
        int64_t col = graph::TemporalNodeIndex(t2, i, n);
        EXPECT_EQ(dense.At({row, col}), 0.0f)
            << "skip edge " << t << "->" << t2;
      }
    }
  }
  // nnz grows linearly in T (paper IV-D complexity claim).
  T::CsrMatrix tg2 = graph::BuildTemporalGraph(spatial, steps * 2);
  int64_t per_step_extra = 2 * n;  // bidirectional temporal edges per seam
  EXPECT_EQ(tg2.nnz() - 2 * tg.nnz(), per_step_extra);
}

INSTANTIATE_TEST_SUITE_P(Dims, TemporalGraphProperty,
                         ::testing::Values(GraphDims{3, 2}, GraphDims{4, 3},
                                           GraphDims{5, 6}, GraphDims{8, 12}));

// ---------------------------------------------------------------------------
// Composite autograd chains: gradcheck random multi-op expressions.

class ChainGradProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChainGradProperty, CompositeExpressionGradchecks) {
  Rng rng(GetParam() * 7 + 1);
  T::Tensor a0 = T::Tensor::Randn({3, 4}, &rng);
  T::Tensor b0 = T::Tensor::Randn({4, 3}, &rng);
  auto report = ag::GradCheck(
      [](const std::vector<ag::Variable>& in) {
        ag::Variable prod = ag::MatMul(in[0], in[1]);        // (3, 3)
        ag::Variable act = ag::Tanh(prod);
        ag::Variable mixed = ag::Mul(act, ag::Sigmoid(prod));
        ag::Variable soft = ag::SoftmaxLastAxis(mixed);
        return ag::MeanAll(ag::Mul(soft, mixed));
      },
      {ag::Variable(a0, true), ag::Variable(b0, true)});
  EXPECT_TRUE(report.ok) << "rel=" << report.max_rel_error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainGradProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Metrics invariants: MAE <= RMSE always; MAPE scale-invariance.

class MetricsProperty : public ::testing::TestWithParam<int> {};

TEST_P(MetricsProperty, MaeNeverExceedsRmse) {
  Rng rng(GetParam() * 13);
  T::Tensor truth = T::AddScalar(
      T::Abs(T::Tensor::Randn({64}, &rng, 50.0f)), 10.0f);
  T::Tensor pred = T::Add(truth, T::Tensor::Randn({64}, &rng, 20.0f));
  metrics::ForecastMetrics m = metrics::Evaluate(pred, truth);
  EXPECT_LE(m.mae, m.rmse + 1e-9);
}

TEST_P(MetricsProperty, MapeInvariantToScale) {
  Rng rng(GetParam() * 29);
  T::Tensor truth = T::AddScalar(
      T::Abs(T::Tensor::Randn({32}, &rng, 40.0f)), 20.0f);
  T::Tensor pred = T::Add(truth, T::Tensor::Randn({32}, &rng, 15.0f));
  metrics::ForecastMetrics m1 = metrics::Evaluate(pred, truth);
  metrics::ForecastMetrics m2 = metrics::Evaluate(
      T::MulScalar(pred, 3.0f), T::MulScalar(truth, 3.0f));
  EXPECT_NEAR(m1.mape, m2.mape, 1e-4);
  EXPECT_NEAR(m2.mae, 3.0 * m1.mae, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------------
// Dataset invariants across all four SynPEMS specs.

class DatasetProperty : public ::testing::TestWithParam<int> {};

TEST_P(DatasetProperty, SpecInvariants) {
  int which = GetParam();
  auto specs = data::DatasetSpec::AllPemsLike(0.08, 2);
  data::TrafficDataset ds = data::TrafficDataset::Generate(specs[which]);
  // Connectivity.
  auto hops = data::HopDistances(ds.network().graph, 0);
  for (int64_t i = 0; i < ds.num_nodes(); ++i) EXPECT_GE(hops[i], 0);
  // Window ranges tile [0, num_windows) exactly.
  EXPECT_EQ(ds.train_range().begin, 0);
  EXPECT_EQ(ds.train_range().end, ds.val_range().begin);
  EXPECT_EQ(ds.val_range().end, ds.test_range().begin);
  int64_t windows = ds.num_steps() - ds.history() - ds.horizon() + 1;
  EXPECT_EQ(ds.test_range().end, windows);
  // All flow non-negative; masked fraction small but nonzero over a
  // multi-day simulation.
  int64_t zeros = 0;
  for (float v : ds.traffic().flow.ToVector()) {
    EXPECT_GE(v, 0.0f);
    zeros += (v == 0.0f);
  }
  double zero_rate = static_cast<double>(zeros) / ds.traffic().flow.numel();
  EXPECT_LT(zero_rate, 0.05);
  // Scaler is finite and positive.
  EXPECT_GT(ds.scaler().stddev(), 0.0f);
  EXPECT_TRUE(std::isfinite(ds.scaler().mean()));
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, DatasetProperty,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace dyhsl
