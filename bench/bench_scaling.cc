// Thread-scaling study: req/s and latency percentiles vs thread budget
// for (a) a single engine with multi-worker parallelism and (b) 2- and
// 4-shard router fleets under the kPinned placement policy.
//
//   $ ./build/bench_scaling                      # prints a table
//   $ ./build/bench_scaling --check-floor=1.6    # CI guard (see below)
//   $ DYHSL_BENCH_OUT=BENCH_scaling.json ./build/bench_scaling
//
// Every phase runs in a forked child pinned to min(threads, cores)
// cores *before* any engine exists, so "threads=1" is genuinely one
// core's worth of execution even on a multi-core host (engine workers,
// their OpenMP teams and the stitchers all inherit the mask). Inside
// that envelope the router's kPinned placement divides the cores among
// a model's engines and core::ThreadBudget splits each engine's slice
// between workers and OpenMP teams — total live compute threads never
// exceed max(threads, engines).
//
// --check-floor=R exits non-zero if the 2-shard fleet's aggregate req/s
// at a 2-thread budget falls below R x its own 1-thread aggregate. The
// floor only means something when a second core exists: on a
// single-core host the bench downgrades to a 0.85x no-regression floor
// (threads time-slice; parallelism cannot pay) and records
// "single-core-no-regression" as the floor mode in the JSON so the
// downgrade is never silent.
//
// Scale: DYHSL_PROFILE=tiny|quick|full adjusts request counts only; the
// model is always an STGCN (hidden 16) on the N=1024 ring network, so
// numbers are comparable with BENCH_shard.json and across CI runs.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/graph/shard.h"
#include "src/serve/router.h"
#include "src/train/model_zoo.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kNodes = 1024;
constexpr int64_t kHistory = 12;
constexpr int64_t kHalo = 2;  // STGCN: 1 conv hop + 1 fringe-degree hop
constexpr int64_t kHidden = 16;
constexpr int kClients = 4;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(values.size() - 1));
  return values[idx];
}

struct PhaseResult {
  std::string name;
  int threads = 0;
  int64_t shards = 0;
  int64_t workers_per_engine = 0;
  int64_t team_per_engine = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// Closed loop against the router: kClients threads, each submitting
// back-to-back and waiting for every response. Returns false if any
// request failed — failures are fast, so counting them as served
// traffic would let a broken fleet *beat* the scaling floor.
bool RunLoad(serve::ForecastRouter* router, const T::Tensor& window,
             int per_client, double* rps, double* p50, double* p99) {
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int64_t> failures(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  Clock::time_point start = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        Clock::time_point sent = Clock::now();
        serve::ForecastResponse response =
            router->Submit(serve::RouterRequest{"m", window.Clone()}).get();
        if (!response.status.ok()) {
          failures[c] += 1;
          std::fprintf(stderr, "serve error: %s\n",
                       response.status.ToString().c_str());
          continue;
        }
        latencies[c].push_back(MsSince(sent));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_ms = MsSince(start);
  std::vector<double> all;
  int64_t failed = 0;
  for (int c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    failed += failures[c];
  }
  *rps = wall_ms > 0.0 ? 1000.0 * static_cast<double>(all.size()) / wall_ms
                       : 0.0;
  *p50 = Percentile(all, 50.0);
  *p99 = Percentile(all, 99.0);
  return failed == 0;
}

// Builds the fleet for (shards, threads) and runs the closed loop.
// shards == 1 is the single-engine configuration: num_workers = threads
// behind the router, so dispatch overhead is identical across phases.
int RunPhaseInChild(int64_t shards, int threads, int per_client, int out_fd) {
  // Confine the whole phase to min(threads, cores) cores. Everything
  // spawned below (workers, OpenMP teams, stitchers) inherits the mask,
  // so a 1-thread phase really runs on one core and thread counts past
  // the core count honestly time-slice.
  std::vector<int> cores = core::AvailableCores();
  if (static_cast<int>(cores.size()) > threads) {
    cores.resize(static_cast<size_t>(threads));
  }
  Status pinned = core::PinCurrentThread(cores);
  if (!pinned.ok()) {
    std::fprintf(stderr, "phase pin: %s\n", pinned.ToString().c_str());
    return 1;
  }
  // The phase's thread budget, visible to engine auto-partitioning
  // (ForecastEngine reads core::TeamThreads() at Create time).
  core::TeamScope budget(threads);

  train::ForecastTask task = train::RingForecastTask(kNodes, kHistory);
  train::ZooConfig zoo;
  zoo.hidden_dim = kHidden;
  serve::EngineOptions options;
  options.max_batch = 8;
  options.max_delay_us = 2000;
  serve::RouterOptions router_options;
  if (shards > 1) {
    router_options.placement = serve::Placement::kPinned;
    router_options.thread_budget = threads;
  }
  auto created = serve::ForecastRouter::Create(router_options);
  if (!created.ok()) return 1;
  auto router = std::move(created).ValueOrDie();
  Status added;
  if (shards == 1) {
    options.num_workers = threads;  // team auto-partitions to 1 apiece
    added = router->AddModel("m", task, serve::ZooFactory("STGCN", zoo), "",
                             options);
  } else {
    options.num_workers = 1;  // one worker per shard engine, team = slice
    added = router->AddShardedModel(
        "m", task, graph::ShardPlan::Build(task.spatial_adj, shards, kHalo),
        serve::ZooFactory("STGCN", zoo), "", options);
  }
  if (!added.ok()) {
    std::fprintf(stderr, "fleet bring-up: %s\n", added.ToString().c_str());
    return 1;
  }
  serve::RouterStats placed = router->Stats();
  const int64_t workers =
      placed.engines.empty() ? 0 : placed.engines[0].num_workers;
  const int64_t team =
      placed.engines.empty() ? 0 : placed.engines[0].team_size;

  Rng rng(1);
  T::Tensor window = T::Tensor::Randn({kHistory, kNodes, 3}, &rng, 0.5f);
  double rps = 0.0, p50 = 0.0, p99 = 0.0;
  if (!RunLoad(router.get(), window, std::max(2, per_client / 4), &rps, &p50,
               &p99)) {  // warm the worker arenas
    return 1;
  }
  if (!RunLoad(router.get(), window, per_client, &rps, &p50, &p99)) return 1;
  char line[160];
  int len = std::snprintf(line, sizeof(line), "%.3f %.4f %.4f %lld %lld\n",
                          rps, p50, p99, static_cast<long long>(workers),
                          static_cast<long long>(team));
  if (write(out_fd, line, static_cast<size_t>(len)) != len) return 1;
  return 0;
}

// Forks the phase so its pinning and OpenMP state die with it.
bool RunPhase(const std::string& name, int64_t shards, int threads,
              int per_client, PhaseResult* result) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    close(fds[0]);
    int code = RunPhaseInChild(shards, threads, per_client, fds[1]);
    close(fds[1]);
    _exit(code);
  }
  close(fds[1]);
  char buffer[160];
  ssize_t got = 0;
  size_t used = 0;
  while (used + 1 < sizeof(buffer) &&
         (got = read(fds[0], buffer + used, sizeof(buffer) - 1 - used)) > 0) {
    used += static_cast<size_t>(got);
  }
  buffer[used] = '\0';
  close(fds[0]);
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;
  result->name = name;
  result->threads = threads;
  result->shards = shards;
  long long workers = 0, team = 0;
  if (std::sscanf(buffer, "%lf %lf %lf %lld %lld", &result->throughput_rps,
                  &result->p50_ms, &result->p99_ms, &workers, &team) != 5) {
    return false;
  }
  result->workers_per_engine = workers;
  result->team_per_engine = team;
  return true;
}

const PhaseResult* Find(const std::vector<PhaseResult>& results,
                        int64_t shards, int threads) {
  for (const PhaseResult& r : results) {
    if (r.shards == shards && r.threads == threads) return &r;
  }
  return nullptr;
}

double Ratio(const std::vector<PhaseResult>& results, int64_t shards,
             int threads_num, int threads_den) {
  const PhaseResult* num = Find(results, shards, threads_num);
  const PhaseResult* den = Find(results, shards, threads_den);
  if (num == nullptr || den == nullptr || den->throughput_rps <= 0.0) {
    return 0.0;
  }
  return num->throughput_rps / den->throughput_rps;
}

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  double check_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    }
  }
  RunProfile profile = GetRunProfile();
  int per_client = profile == RunProfile::kTiny
                       ? 8
                       : (profile == RunProfile::kQuick ? 24 : 48);
  const int cores = core::HardwareThreads();

  std::printf("=== bench_scaling (N=%lld, STGCN d=%lld, halo=%lld, "
              "%d clients x %d requests, %d core(s)) ===\n",
              static_cast<long long>(kNodes),
              static_cast<long long>(kHidden), static_cast<long long>(kHalo),
              kClients, per_client, cores);

  const int thread_counts[] = {1, 2, 4};
  const int64_t shard_counts[] = {1, 2, 4};
  std::vector<PhaseResult> results;
  for (int64_t shards : shard_counts) {
    for (int threads : thread_counts) {
      char name[32];
      std::snprintf(name, sizeof(name), "%s_t%d",
                    shards == 1 ? "engine" : (shards == 2 ? "x2" : "x4"),
                    threads);
      PhaseResult result;
      if (!RunPhase(name, shards, threads, per_client, &result)) {
        std::fprintf(stderr, "phase %s failed\n", name);
        return 1;
      }
      std::printf("%-10s %lld shard(s) x %lld worker(s) x team %lld  "
                  "%8.1f req/s   p50 %7.2f ms   p99 %7.2f ms\n",
                  result.name.c_str(), static_cast<long long>(result.shards),
                  static_cast<long long>(result.workers_per_engine),
                  static_cast<long long>(result.team_per_engine),
                  result.throughput_rps, result.p50_ms, result.p99_ms);
      results.push_back(std::move(result));
    }
  }

  // The headline number: the 2-shard fleet's aggregate at a 2-thread
  // budget over its own 1-thread aggregate.
  const double x2_scale = Ratio(results, 2, 2, 1);
  const double x2_scale4 = Ratio(results, 2, 4, 1);
  const double x4_scale4 = Ratio(results, 4, 4, 1);
  const double engine_scale2 = Ratio(results, 1, 2, 1);
  const double engine_scale4 = Ratio(results, 1, 4, 1);
  std::printf("2-shard fleet 2-thread vs 1-thread aggregate: %.2fx\n",
              x2_scale);
  std::printf("2-shard fleet 4-thread vs 1-thread aggregate: %.2fx\n",
              x2_scale4);
  std::printf("4-shard fleet 4-thread vs 1-thread aggregate: %.2fx\n",
              x4_scale4);
  std::printf("single engine 2/4 workers vs 1: %.2fx / %.2fx\n",
              engine_scale2, engine_scale4);

  // A 2x speedup needs a second core; on a single-core host threads
  // time-slice and the only honest check is no-regression. The JSON
  // records which floor applied so a downgraded run can never pass for
  // a scaling result.
  const bool can_scale = cores >= 2;
  const char* floor_mode =
      can_scale ? "multi-core-scaling" : "single-core-no-regression";
  const double effective_floor =
      check_floor > 0.0 ? (can_scale ? check_floor : 0.85) : 0.0;
  if (!can_scale && check_floor > 0.0) {
    std::printf("NOTE: single core visible — scaling floor %.2f downgraded "
                "to %.2f no-regression floor\n",
                check_floor, effective_floor);
  }

  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_scaling.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"model\": \"STGCN\",\n");
  std::fprintf(out, "  \"nodes\": %lld,\n", static_cast<long long>(kNodes));
  std::fprintf(out, "  \"hidden_dim\": %lld,\n",
               static_cast<long long>(kHidden));
  std::fprintf(out, "  \"halo_hops\": %lld,\n", static_cast<long long>(kHalo));
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"clients\": %d,\n", kClients);
  std::fprintf(out, "  \"requests_per_client\": %d,\n", per_client);
  std::fprintf(out, "  \"cores\": %d,\n", cores);
  std::fprintf(out, "  \"floor_mode\": \"%s\",\n", floor_mode);
  std::fprintf(out, "  \"x2_2t_vs_1t\": %.4f,\n", x2_scale);
  std::fprintf(out, "  \"x2_4t_vs_1t\": %.4f,\n", x2_scale4);
  std::fprintf(out, "  \"x4_4t_vs_1t\": %.4f,\n", x4_scale4);
  std::fprintf(out, "  \"engine_2w_vs_1w\": %.4f,\n", engine_scale2);
  std::fprintf(out, "  \"engine_4w_vs_1w\": %.4f,\n", engine_scale4);
  std::fprintf(out, "  \"phases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"shards\": %lld, \"threads\": %d, "
                 "\"workers_per_engine\": %lld, \"team_per_engine\": %lld, "
                 "\"throughput_rps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f}%s\n",
                 results[i].name.c_str(),
                 static_cast<long long>(results[i].shards),
                 results[i].threads,
                 static_cast<long long>(results[i].workers_per_engine),
                 static_cast<long long>(results[i].team_per_engine),
                 results[i].throughput_rps, results[i].p50_ms,
                 results[i].p99_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (effective_floor > 0.0 && x2_scale < effective_floor) {
    std::fprintf(stderr,
                 "FAIL: 2-shard 2-thread scaling %.3f below %s floor %.3f\n",
                 x2_scale, floor_mode, effective_floor);
    return 1;
  }
  return 0;
}
