// Reproduces paper Fig. 7: visualization of the learned hypergraph
// incidence matrix Λ (Eq. 6) on SynPEMS08 at horizon-window time steps
// 1, 6 and 12. Prints a signed text heatmap of an 8-node x 8-hyperedge
// submatrix per step, plus the evolution statistics the paper discusses
// (node-hyperedge affinities change over time; some hyperedges act like
// global aggregators).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/data/io.h"

namespace dyhsl::bench {
namespace {

char Glyph(float v, float scale) {
  // Signed intensity ramp: negatives '-=%', positives '+*@'.
  float a = std::fabs(v) / scale;
  if (a < 0.15f) return '.';
  if (v > 0) return a < 0.45f ? '+' : (a < 0.8f ? '*' : '@');
  return a < 0.45f ? '-' : (a < 0.8f ? '=' : '%');
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Fig. 7: learned incidence matrix across time", env);

  data::TrafficDataset ds = MakeDataset("SynPEMS08", env);
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  models::DyHslConfig cfg;
  cfg.hidden_dim = env.zoo_config.hidden_dim;
  cfg.prior_layers = 3;
  cfg.mhce_layers = 2;
  cfg.num_hyperedges = 8;
  cfg.seed = env.zoo_config.seed;
  models::DyHsl model(task, cfg);
  train::TrainModel(&model, ds, env.train_config);

  // One test window -> Λ (1, T*N, I).
  data::BatchIterator it(&ds, {ds.test_range().begin,
                               ds.test_range().begin + 1},
                         1, false, 1);
  data::BatchIterator::Batch batch;
  it.Next(&batch);
  tensor::Tensor incidence = model.IncidenceFor(batch.x);
  int64_t n = ds.num_nodes();
  int64_t num_edges = cfg.num_hyperedges;
  int64_t show_nodes = std::min<int64_t>(8, n);

  float scale = 0.0f;
  for (int64_t i = 0; i < incidence.numel(); ++i) {
    scale = std::max(scale, std::fabs(incidence.data()[i]));
  }
  if (scale <= 0) scale = 1.0f;

  std::vector<int64_t> steps = {0, 5, 11};  // paper's steps 1, 6, 12
  for (int64_t t : steps) {
    std::printf("Time step %lld (submatrix: %lld nodes x %lld hyperedges)\n",
                static_cast<long long>(t + 1),
                static_cast<long long>(show_nodes),
                static_cast<long long>(num_edges));
    std::printf("        ");
    for (int64_t e = 0; e < num_edges; ++e) {
      std::printf("E%-2lld ", static_cast<long long>(e));
    }
    std::printf("\n");
    for (int64_t v = 0; v < show_nodes; ++v) {
      std::printf("  N%-3lld  ", static_cast<long long>(v));
      for (int64_t e = 0; e < num_edges; ++e) {
        float val = incidence.At({0, t * n + v, e});
        std::printf(" %c  ", Glyph(val, scale));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Quantitative counterparts of the paper's qualitative claims.
  // 1) Affinities evolve over time: mean |Λ_t1 - Λ_t12| vs mean |Λ|.
  double drift = 0.0, mag = 0.0;
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t e = 0; e < num_edges; ++e) {
      float a = incidence.At({0, 0 * n + v, e});
      float b = incidence.At({0, 11 * n + v, e});
      drift += std::fabs(a - b);
      mag += 0.5 * (std::fabs(a) + std::fabs(b));
    }
  }
  std::printf("Temporal drift of node-hyperedge affinity: "
              "mean|Λ(t1)-Λ(t12)| / mean|Λ| = %.2f\n",
              drift / std::max(mag, 1e-9));
  // 2) Hyperedge roles: breadth (fraction of nodes with strong affinity).
  std::printf("Hyperedge breadth at t=12 (fraction of nodes with |Λ| > "
              "0.3 max):\n  ");
  for (int64_t e = 0; e < num_edges; ++e) {
    int64_t strong = 0;
    for (int64_t v = 0; v < n; ++v) {
      if (std::fabs(incidence.At({0, 11 * n + v, e})) > 0.3f * scale) {
        ++strong;
      }
    }
    std::printf("E%lld=%.2f  ", static_cast<long long>(e),
                static_cast<double>(strong) / n);
  }
  std::printf("\n");

  // Full matrix for external plotting.
  tensor::Tensor flat = incidence.Reshape({task.history * n, num_edges});
  if (data::SaveCsv(flat, "fig7_incidence.csv").ok()) {
    std::printf("Full Λ written to fig7_incidence.csv (rows = t*N + node)\n");
  }
  std::printf(
      "\nExpected shape (paper): different nodes bind to different\n"
      "hyperedges; affinities drift across the 12 steps (nodes 'leave' and\n"
      "'join' hyperedges); some hyperedges connect most nodes (global\n"
      "aggregator role) while others are selective with signed weights\n"
      "(convolution-like role).\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
