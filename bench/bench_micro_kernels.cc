// google-benchmark microbenchmarks for the tensor/sparse kernels that
// dominate DyHSL training time: dense matmul, batched matmul, SpMM over
// temporal graphs, elementwise chains, and hypergraph-style products.

#include <benchmark/benchmark.h>

#include "src/core/rng.h"
#include "src/graph/temporal_graph.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  T::Tensor a = T::Tensor::Randn({n, n}, &rng);
  T::Tensor b = T::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_BatchedMatMulSharedRhs(benchmark::State& state) {
  int64_t rows = state.range(0);
  Rng rng(2);
  T::Tensor a = T::Tensor::Randn({16, rows, 32}, &rng);
  T::Tensor w = T::Tensor::Randn({32, 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::BatchedMatMul(a, w));
  }
  state.SetItemsProcessed(state.iterations() * 16 * rows * 32 * 32);
}
BENCHMARK(BM_BatchedMatMulSharedRhs)->Arg(256)->Arg(1024);

// SpMM over the Eq. 4 temporal graph: the prior-encoder hot loop.
void BM_TemporalGraphSpMM(benchmark::State& state) {
  int64_t n = state.range(0);
  // Ring road network, T = 12 steps.
  std::vector<T::Triplet> edges;
  for (int64_t i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, 1.0f});
    edges.push_back({(i + 1) % n, i, 1.0f});
  }
  auto spatial = T::CsrMatrix::FromTriplets(n, n, std::move(edges));
  auto op = graph::BuildNormalizedTemporalOp(spatial, 12);
  Rng rng(3);
  T::Tensor x = T::Tensor::Randn({16, 12 * n, 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::SpMM(op.matrix(), x));
  }
  state.SetItemsProcessed(state.iterations() * 16 * op.nnz() * 32);
}
BENCHMARK(BM_TemporalGraphSpMM)->Arg(64)->Arg(256);

// Acceptance shapes for the blocked-GEMM work: DHSL incidence products at
// paper scale (B=32 windows, N=207 PEMSD7M-sized nodes, d=64 hidden,
// I=32 hyperedges). Λ = H W is the batched matmul the kernel PR targets.
void BM_BatchedMatMulDyhsl(benchmark::State& state) {
  constexpr int64_t kBatch = 32, kNodes = 207, kDim = 64, kEdges = 32;
  Rng rng(8);
  T::Tensor h = T::Tensor::Randn({kBatch, kNodes, kDim}, &rng);
  T::Tensor w = T::Tensor::Randn({kDim, kEdges}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::BatchedMatMul(h, w));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kBatch * kNodes * kDim *
                          kEdges);
}
BENCHMARK(BM_BatchedMatMulDyhsl);

// Same shapes, the Eq. 7 aggregation E = ΛᵀH (trans_a path) and the Eq. 8
// update F = Λ E — the strided-inner-loop paths of the pre-blocked kernel.
void BM_BatchedMatMulDyhslTransA(benchmark::State& state) {
  constexpr int64_t kBatch = 32, kNodes = 207, kDim = 64, kEdges = 32;
  Rng rng(9);
  T::Tensor inc = T::Tensor::Randn({kBatch, kNodes, kEdges}, &rng);
  T::Tensor h = T::Tensor::Randn({kBatch, kNodes, kDim}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::BatchedMatMul(inc, h, /*trans_a=*/true,
                                              /*trans_b=*/false));
  }
  state.SetItemsProcessed(state.iterations() * 2 * kBatch * kNodes * kDim *
                          kEdges);
}
BENCHMARK(BM_BatchedMatMulDyhslTransA);

void BM_MatMulTransB(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(10);
  T::Tensor a = T::Tensor::Randn({n, n}, &rng);
  T::Tensor b = T::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::MatMul(a, b, false, /*trans_b=*/true));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(128)->Arg(256);

// The DHSL block's algebra: Λ = H W; E = ΛᵀH; F = Λ E.
void BM_HypergraphProducts(benchmark::State& state) {
  int64_t rows = state.range(0);
  constexpr int64_t kDim = 32, kEdges = 16;
  Rng rng(4);
  T::Tensor h = T::Tensor::Randn({8, rows, kDim}, &rng);
  T::Tensor w = T::Tensor::Randn({kDim, kEdges}, &rng);
  for (auto _ : state) {
    T::Tensor inc = T::BatchedMatMul(h, w);                  // Λ
    T::Tensor e = T::BatchedMatMul(inc, h, true, false);     // ΛᵀH
    benchmark::DoNotOptimize(T::BatchedMatMul(inc, e));      // ΛE
  }
  state.SetItemsProcessed(state.iterations() * 8 * rows * kDim * kEdges);
}
BENCHMARK(BM_HypergraphProducts)->Arg(384)->Arg(1536);

void BM_ElementwiseChain(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(5);
  T::Tensor a = T::Tensor::Randn({n}, &rng);
  T::Tensor b = T::Tensor::Randn({n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::Relu(T::Add(T::Mul(a, b), b)));
  }
  state.SetItemsProcessed(state.iterations() * n * 3);
}
BENCHMARK(BM_ElementwiseChain)->Arg(1 << 14)->Arg(1 << 18);

void BM_MaxPoolTime(benchmark::State& state) {
  Rng rng(6);
  T::Tensor x = T::Tensor::Randn({16, 12, state.range(0), 32}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::MaxPoolAxis(x, 1, 3));
  }
}
BENCHMARK(BM_MaxPoolTime)->Arg(64)->Arg(256);

void BM_Conv1dDilated(benchmark::State& state) {
  Rng rng(7);
  T::Tensor x = T::Tensor::Randn({state.range(0), 32, 12}, &rng);
  T::Tensor w = T::Tensor::Randn({32, 32, 2}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::Conv1d(x, w, 2, 2, 0));
  }
}
BENCHMARK(BM_Conv1dDilated)->Arg(64)->Arg(512);

}  // namespace
}  // namespace dyhsl

BENCHMARK_MAIN();
