// Serving benchmark: grad-free vs taped forward latency, the inference
// plan's attributable win (prepacked weights + GEMM fast paths vs the
// legacy all-packed path), engine single-stream latency, and closed-loop
// multi-client throughput.
//
//   $ ./build/bench_serve                          # prints a table
//   $ ./build/bench_serve --check-prepack-floor=1.15   # CI guard
//   $ DYHSL_BENCH_OUT=BENCH_serve.json ./build/bench_serve
//
// The plan phase forks the same grad-free forward three ways in
// interleaved rounds: legacy (fast paths off, no prepack — the pre-plan
// kernel), fast (direct-A/small-path kernels, packing still on the fly),
// and plan (fast + prepacked constant weights served by the
// PrepackCache). All three are bit-identical by construction; the gap is
// pure packing/dispatch time, reported as `packing_share`.
// --check-prepack-floor=R exits non-zero when legacy/plan < R.
//
// Scale: DYHSL_PROFILE=tiny|quick|full adjusts iteration counts only —
// the model is always the paper-default DyHSL (d=64, Lp=6, Ls=2, I=32,
// J=6) on an N=207 sensor network, so numbers are comparable across
// profiles and CI runs. Results are written to the JSON file named by
// DYHSL_BENCH_OUT (default BENCH_serve.json in the working directory),
// replacing any previous contents.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/autograd/inference.h"
#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/models/dyhsl.h"
#include "src/serve/engine.h"
#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/workspace.h"
#include "src/train/model_zoo.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kNodes = 207;
constexpr int64_t kHistory = 12;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(values.size() - 1));
  return values[idx];
}

// One timed burst of `iters` forwards (fresh scope + arena reset each).
double TimeForwardOnce(models::DyHsl* model, const T::Tensor& x,
                       T::Workspace* workspace, bool grad_free, int iters) {
  Clock::time_point start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    T::WorkspaceScope scope(workspace);
    if (grad_free) {
      autograd::InferenceModeGuard no_grad;
      volatile float sink = model->Forward(x, false).value().data()[0];
      (void)sink;
    } else {
      volatile float sink = model->Forward(x, false).value().data()[0];
      (void)sink;
    }
    workspace->Reset();
  }
  return MsSince(start) / iters;
}

struct ForwardTimes {
  double taped_ms = 0.0;
  double gradfree_ms = 0.0;
};

/// The three kernel configurations of the plan fork (all bit-identical).
enum class PlanMode {
  kLegacy,  // fast paths off, no prepack: the pre-plan serving kernel
  kFast,    // direct-A/small-path kernels, packing still per call
  kPlan,    // kFast + prepacked constant weights from the PrepackCache
};

// One timed burst of grad-free forwards under the given kernel mode.
double TimePlanModeOnce(models::DyHsl* model, const T::Tensor& x,
                        T::Workspace* workspace, PlanMode mode, int iters) {
  const bool prev_fast = T::SetGemmFastPaths(mode != PlanMode::kLegacy);
  Clock::time_point start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    T::WorkspaceScope scope(workspace);
    autograd::InferenceModeGuard no_grad;
    if (mode == PlanMode::kPlan) {
      T::PrepackLookupScope prepack;
      volatile float sink = model->Forward(x, false).value().data()[0];
      (void)sink;
    } else {
      volatile float sink = model->Forward(x, false).value().data()[0];
      (void)sink;
    }
    workspace->Reset();
  }
  double ms = MsSince(start) / iters;
  T::SetGemmFastPaths(prev_fast);
  return ms;
}

struct PlanTimes {
  double legacy_ms = 0.0;
  double fast_ms = 0.0;
  double plan_ms = 0.0;
};

// Interleaved legacy / fast / plan rounds (best-of per mode), same forked
// structure as TimeForwardPair so no mode is biased by machine drift.
PlanTimes TimePlanFork(models::DyHsl* model, const T::Tensor& x, int iters,
                       int rounds) {
  T::Workspace legacy_ws, fast_ws, plan_ws;
  TimePlanModeOnce(model, x, &legacy_ws, PlanMode::kLegacy, 1);
  TimePlanModeOnce(model, x, &fast_ws, PlanMode::kFast, 1);
  TimePlanModeOnce(model, x, &plan_ws, PlanMode::kPlan, 1);
  PlanTimes best{1e30, 1e30, 1e30};
  for (int r = 0; r < rounds; ++r) {
    best.legacy_ms = std::min(
        best.legacy_ms,
        TimePlanModeOnce(model, x, &legacy_ws, PlanMode::kLegacy, iters));
    best.fast_ms = std::min(
        best.fast_ms,
        TimePlanModeOnce(model, x, &fast_ws, PlanMode::kFast, iters));
    best.plan_ms = std::min(
        best.plan_ms,
        TimePlanModeOnce(model, x, &plan_ws, PlanMode::kPlan, iters));
  }
  return best;
}

// Enrolls every 2-D weight of the model in the PrepackCache (what
// ForecastEngine::Create does for engines; the standalone forward phase
// needs it done by hand).
void EnrollModel(const nn::Module& module) {
  for (const auto& [name, var] : module.NamedParameters()) {
    if (var.value().dim() == 2) T::PrepackCache::Instance().Enroll(var.value());
  }
  for (const auto& [name, var] : module.NamedConstants()) {
    if (var.value().dim() == 2) T::PrepackCache::Instance().Enroll(var.value());
  }
}

// Interleaved taped / grad-free rounds (best-of per mode): alternating
// bursts keep machine-state drift (frequency, cache pressure from
// neighbors) from biasing one mode's number.
ForwardTimes TimeForwardPair(models::DyHsl* model, const T::Tensor& x,
                             int iters, int rounds) {
  T::Workspace taped_ws;
  T::Workspace gradfree_ws;
  // Warm both arenas before the timed rounds.
  TimeForwardOnce(model, x, &taped_ws, false, 1);
  TimeForwardOnce(model, x, &gradfree_ws, true, 1);
  ForwardTimes best{1e30, 1e30};
  for (int r = 0; r < rounds; ++r) {
    best.taped_ms = std::min(
        best.taped_ms, TimeForwardOnce(model, x, &taped_ws, false, iters));
    best.gradfree_ms = std::min(
        best.gradfree_ms, TimeForwardOnce(model, x, &gradfree_ws, true, iters));
  }
  return best;
}

struct LoadResult {
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
};

// Closed loop: `clients` threads each submit `per_client` requests
// back-to-back and wait for each response before sending the next.
LoadResult RunLoad(serve::ForecastEngine* engine, const T::Tensor& window,
                   int clients, int per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::vector<int64_t>> batch_sizes(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        Clock::time_point sent = Clock::now();
        serve::ForecastResponse response =
            engine->Submit(serve::ForecastRequest{window.Clone()}).get();
        latencies[c].push_back(MsSince(sent));
        if (response.status.ok()) {
          batch_sizes[c].push_back(response.batch_size);
        } else {
          std::fprintf(stderr, "serve error: %s\n",
                       response.status.ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_ms = MsSince(start);

  LoadResult result;
  std::vector<double> all;
  double batch_sum = 0.0;
  int64_t batch_count = 0;
  for (int c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    for (int64_t b : batch_sizes[c]) {
      batch_sum += static_cast<double>(b);
      ++batch_count;
    }
  }
  result.throughput_rps =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(all.size()) / wall_ms : 0.0;
  result.p50_ms = Percentile(all, 50.0);
  result.p99_ms = Percentile(all, 99.0);
  result.mean_batch = batch_count > 0 ? batch_sum / batch_count : 0.0;
  return result;
}

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  double check_prepack_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-prepack-floor=", 22) == 0) {
      check_prepack_floor = std::atof(argv[i] + 22);
    }
  }
  ConfigureParallelism();
  RunProfile profile = GetRunProfile();
  int fwd_iters = profile == RunProfile::kTiny ? 5 : 20;
  int per_client = profile == RunProfile::kTiny ? 4 : 16;

  train::ForecastTask task = train::RingForecastTask(kNodes, kHistory);
  models::DyHslConfig config;  // paper defaults: d=64 Lp=6 Ls=2 I=32 J=6
  config.dropout = 0.0f;
  models::DyHsl model(task, config);
  Rng rng(1);
  T::Tensor x1 = T::Tensor::Randn({1, kHistory, kNodes, 3}, &rng, 0.5f);
  T::Tensor window = x1.Reshape({kHistory, kNodes, 3}).Clone();

  std::printf("=== bench_serve (N=%lld, paper-default DyHSL) ===\n",
              static_cast<long long>(kNodes));

  // 1. Single-window forward: taped vs grad-free (interleaved rounds).
  ForwardTimes times = TimeForwardPair(&model, x1, fwd_iters, 6);
  double taped_ms = times.taped_ms;
  double gradfree_ms = times.gradfree_ms;
  double speedup = gradfree_ms > 0.0 ? taped_ms / gradfree_ms : 0.0;
  std::printf("forward (B=1): taped %.2f ms, grad-free %.2f ms  -> %.2fx\n",
              taped_ms, gradfree_ms, speedup);

  // 1b. The inference plan's attributable win: the same grad-free forward
  // under the legacy kernel, the fast paths alone, and the full plan
  // (fast paths + prepacked weights). Bit-identical outputs; the gap is
  // packing and dispatch time only.
  EnrollModel(model);
  PlanTimes plan = TimePlanFork(&model, x1, fwd_iters, 6);
  const double prepack_speedup =
      plan.plan_ms > 0.0 ? plan.legacy_ms / plan.plan_ms : 0.0;
  const double packing_share =
      plan.legacy_ms > 0.0
          ? (plan.legacy_ms - plan.plan_ms) / plan.legacy_ms
          : 0.0;
  std::printf(
      "grad-free plan fork (B=1): legacy %.2f ms, fast %.2f ms, "
      "plan %.2f ms  -> %.2fx (packing share %.1f%%)\n",
      plan.legacy_ms, plan.fast_ms, plan.plan_ms, prepack_speedup,
      100.0 * packing_share);

  // 2. Engine under closed-loop load at 1 / 4 / 16 clients.
  serve::EngineOptions options;
  options.max_batch = 16;
  options.max_delay_us = 2000;
  auto created = serve::ForecastEngine::Create(task, config, "", options);
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<serve::ForecastEngine> engine =
      std::move(created).ValueOrDie();
  // Warm the workers (first batches pay arena growth).
  RunLoad(engine.get(), window, 2, 4);

  std::vector<int> client_counts = {1, 4, 16};
  std::vector<LoadResult> loads;
  for (int clients : client_counts) {
    LoadResult load = RunLoad(engine.get(), window, clients, per_client);
    loads.push_back(load);
    std::printf(
        "clients=%-3d  %8.1f req/s   p50 %7.2f ms   p99 %7.2f ms   "
        "mean batch %.1f\n",
        clients, load.throughput_rps, load.p50_ms, load.p99_ms,
        load.mean_batch);
  }

  // 3. JSON artifact for CI trend tracking.
  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_serve.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"model\": \"DyHSL\",\n");
  std::fprintf(out, "  \"nodes\": %lld,\n", static_cast<long long>(kNodes));
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"forward_taped_ms\": %.4f,\n", taped_ms);
  std::fprintf(out, "  \"forward_gradfree_ms\": %.4f,\n", gradfree_ms);
  std::fprintf(out, "  \"gradfree_speedup\": %.4f,\n", speedup);
  std::fprintf(out, "  \"forward_gradfree_legacy_ms\": %.4f,\n",
               plan.legacy_ms);
  std::fprintf(out, "  \"forward_gradfree_fast_ms\": %.4f,\n", plan.fast_ms);
  std::fprintf(out, "  \"forward_gradfree_plan_ms\": %.4f,\n", plan.plan_ms);
  std::fprintf(out, "  \"prepack_speedup\": %.4f,\n", prepack_speedup);
  std::fprintf(out, "  \"packing_share\": %.4f,\n", packing_share);
  std::fprintf(out, "  \"engine\": {\"max_batch\": %lld, \"max_delay_us\": "
                    "%lld, \"num_workers\": %lld},\n",
               static_cast<long long>(options.max_batch),
               static_cast<long long>(options.max_delay_us),
               static_cast<long long>(options.num_workers));
  std::fprintf(out, "  \"load\": [\n");
  for (size_t i = 0; i < loads.size(); ++i) {
    std::fprintf(out,
                 "    {\"clients\": %d, \"throughput_rps\": %.2f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"mean_batch\": %.2f}%s\n",
                 client_counts[i], loads[i].throughput_rps, loads[i].p50_ms,
                 loads[i].p99_ms, loads[i].mean_batch,
                 i + 1 < loads.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_prepack_floor > 0.0 && prepack_speedup < check_prepack_floor) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: prepack speedup %.2fx below required "
                 "%.2fx (legacy %.2f ms vs plan %.2f ms)\n",
                 prepack_speedup, check_prepack_floor, plan.legacy_ms,
                 plan.plan_ms);
    return 1;
  }
  return 0;
}
