// google-benchmark microbenchmarks isolating the SIMD selection kernels of
// src/tensor/simd.h: scalar vs dispatched top-k selection, threshold count
// and compress-store, in ns/element across row widths, tie densities and k.
//
//   $ ./build/bench_micro_select
//   $ DYHSL_SIMD=scalar ./build/bench_micro_select   # force the reference
//
// items_processed counts matrix elements scanned, so the reported rate is
// directly the per-element selection cost the DHSL sparse step pays.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/tensor/simd.h"
#include "src/tensor/tensor.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;
namespace simd = ::dyhsl::tensor::simd;

constexpr int64_t kRows = 256;  // batch of rows per iteration

// Row data generators: random magnitudes, and the all-equal worst case for
// tie handling (every round of the tournament scans a full tie group).
T::Tensor RandomRows(int64_t n) {
  Rng rng(5);
  return T::Tensor::Randn({kRows, n}, &rng);
}

T::Tensor TiedRows(int64_t n) {
  return T::Tensor::Full({kRows, n}, 0.7f);
}

void RunTopK(benchmark::State& state, const simd::Ops& ops,
             const T::Tensor& rows, int64_t k) {
  const int64_t n = rows.size(1);
  std::vector<float> scratch(simd::TopKScratchFloats(n));
  std::vector<int64_t> out(k);
  for (auto _ : state) {
    for (int64_t r = 0; r < kRows; ++r) {
      ops.topk_select(rows.data() + r * n, n, k, scratch.data(), out.data());
      benchmark::DoNotOptimize(out.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows * n);
}

void BM_TopKSelectScalar(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  RunTopK(state, simd::OpsFor(simd::Level::kScalar), rows, state.range(1));
}

void BM_TopKSelectActive(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  RunTopK(state, simd::Active(), rows, state.range(1));
}

// (n, k) grid: the DHSL shapes (I=32 k=4, I=128 k=8), odd widths that
// exercise the masked tails, and k ~ n/2 where selection work peaks.
#define TOPK_ARGS                                              \
  ->Args({32, 4})->Args({128, 8})->Args({33, 4})->Args({127, 8}) \
      ->Args({64, 32})->Args({207, 16})
BENCHMARK(BM_TopKSelectScalar) TOPK_ARGS;
BENCHMARK(BM_TopKSelectActive) TOPK_ARGS;

void BM_TopKSelectTiesScalar(benchmark::State& state) {
  T::Tensor rows = TiedRows(state.range(0));
  RunTopK(state, simd::OpsFor(simd::Level::kScalar), rows, state.range(1));
}

void BM_TopKSelectTiesActive(benchmark::State& state) {
  T::Tensor rows = TiedRows(state.range(0));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  RunTopK(state, simd::Active(), rows, state.range(1));
}

BENCHMARK(BM_TopKSelectTiesScalar)->Args({32, 4})->Args({128, 8});
BENCHMARK(BM_TopKSelectTiesActive)->Args({32, 4})->Args({128, 8});

void RunCount(benchmark::State& state, const simd::Ops& ops,
              const T::Tensor& rows) {
  const int64_t n = rows.size(1);
  for (auto _ : state) {
    for (int64_t r = 0; r < kRows; ++r) {
      benchmark::DoNotOptimize(
          ops.count_ge_abs(rows.data() + r * n, n, 0.5f));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows * n);
}

void BM_CountGeAbsScalar(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  RunCount(state, simd::OpsFor(simd::Level::kScalar), rows);
}

void BM_CountGeAbsActive(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  RunCount(state, simd::Active(), rows);
}

BENCHMARK(BM_CountGeAbsScalar)->Arg(32)->Arg(128)->Arg(1024);
BENCHMARK(BM_CountGeAbsActive)->Arg(32)->Arg(128)->Arg(1024);

void RunCompress(benchmark::State& state, const simd::Ops& ops,
                 const T::Tensor& rows) {
  const int64_t n = rows.size(1);
  std::vector<int32_t> idx(n);
  for (auto _ : state) {
    for (int64_t r = 0; r < kRows; ++r) {
      benchmark::DoNotOptimize(
          ops.compress_ge_abs(rows.data() + r * n, n, 0.5f, idx.data()));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRows * n);
}

void BM_CompressGeAbsScalar(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  RunCompress(state, simd::OpsFor(simd::Level::kScalar), rows);
}

void BM_CompressGeAbsActive(benchmark::State& state) {
  T::Tensor rows = RandomRows(state.range(0));
  state.SetLabel(simd::LevelName(simd::ActiveLevel()));
  RunCompress(state, simd::Active(), rows);
}

BENCHMARK(BM_CompressGeAbsScalar)->Arg(32)->Arg(128)->Arg(1024);
BENCHMARK(BM_CompressGeAbsActive)->Arg(32)->Arg(128)->Arg(1024);

}  // namespace
}  // namespace dyhsl

BENCHMARK_MAIN();
