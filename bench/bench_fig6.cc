// Reproduces paper Fig. 6: case study of predictions vs ground truth on
// SynPEMS08. The paper plots four sensors showing (a) regular daily
// patterns, (b) adaptation to a pattern change (weekday -> weekend),
// (c) robustness to noise, (d) an anomalous sensor. We train DyHSL, roll
// 1-step-window predictions across the test days, select sensors by those
// criteria from simulation ground truth, print compact ASCII charts and
// write the full series to CSV for plotting.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/data/io.h"

namespace dyhsl::bench {
namespace {

// Renders two aligned series as a small ASCII chart.
void AsciiChart(const std::vector<float>& truth,
                const std::vector<float>& pred, int64_t width = 96) {
  float lo = 1e30f, hi = -1e30f;
  for (float v : truth) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi <= lo) hi = lo + 1.0f;
  const int kRows = 12;
  int64_t stride =
      std::max<int64_t>(1, static_cast<int64_t>(truth.size()) / width);
  int64_t cols = static_cast<int64_t>(truth.size()) / stride;
  std::vector<std::string> canvas(kRows, std::string(cols, ' '));
  auto put = [&](const std::vector<float>& s, char ch) {
    for (int64_t c = 0; c < cols; ++c) {
      float v = s[c * stride];
      int row = static_cast<int>((v - lo) / (hi - lo) * (kRows - 1) + 0.5f);
      row = std::clamp(row, 0, kRows - 1);
      char& cell = canvas[kRows - 1 - row][c];
      cell = (cell == ' ' || cell == ch) ? ch : '#';
    }
  };
  put(truth, '.');
  put(pred, '*');
  for (const std::string& line : canvas) std::printf("    |%s\n", line.c_str());
  std::printf("    +%s\n", std::string(cols, '-').c_str());
  std::printf("    truth='.'  prediction='*'  overlap='#'  range=[%.0f, %.0f]\n",
              lo, hi);
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Fig. 6: prediction case study on SynPEMS08", env);

  data::TrafficDataset ds = MakeDataset("SynPEMS08", env);
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  models::DyHslConfig cfg;
  cfg.hidden_dim = env.zoo_config.hidden_dim;
  cfg.prior_layers = 3;
  cfg.mhce_layers = 2;
  cfg.num_hyperedges = 16;
  cfg.seed = env.zoo_config.seed;
  models::DyHsl model(task, cfg);
  train::TrainModel(&model, ds, env.train_config);

  // Roll 1-step-ahead-window forecasts over a test stretch: use horizon
  // step 0 of consecutive windows.
  auto range = ds.test_range();
  int64_t span = std::min<int64_t>(range.size(),
                                   env.profile == RunProfile::kTiny ? 96
                                                                    : 288);
  int64_t n = ds.num_nodes();
  std::vector<std::vector<float>> truth(n), pred(n);
  data::BatchIterator it(&ds, {range.begin, range.begin + span},
                         env.knobs.batch_size, /*shuffle=*/false, 1);
  data::BatchIterator::Batch batch;
  while (it.Next(&batch)) {
    autograd::Variable out = model.Forward(batch.x, false);
    for (int64_t b = 0; b < batch.x.size(0); ++b) {
      for (int64_t i = 0; i < n; ++i) {
        truth[i].push_back(batch.y.At({b, 0, i}));
        pred[i].push_back(out.value().At({b, 0, i}));
      }
    }
  }

  // Sensor selection per the paper's four panels.
  // (a) regular: sensor with lowest noise-to-profile ratio -> lowest
  //     high-frequency energy; approximate by smallest lag-1 differences.
  auto roughness = [&](const std::vector<float>& s) {
    double acc = 0;
    for (size_t k = 1; k < s.size(); ++k) {
      acc += std::fabs(s[k] - s[k - 1]);
    }
    return acc / s.size();
  };
  int64_t regular = 0, noisy = 0, eventful = 0, anomalous = 0;
  double best_rough = 1e30, worst_rough = -1;
  for (int64_t i = 0; i < n; ++i) {
    double r = roughness(truth[i]);
    if (r < best_rough) {
      best_rough = r;
      regular = i;
    }
    if (r > worst_rough) {
      worst_rough = r;
      noisy = i;
    }
  }
  // (b) pattern change: epicenter of the last test-range event if any.
  if (!ds.traffic().events.empty()) {
    eventful = ds.traffic().events.back().epicenter;
  }
  // (d) anomalous: sensor with most near-zero (dropout) readings.
  int64_t most_zeros = -1;
  for (int64_t i = 0; i < n; ++i) {
    int64_t zeros = 0;
    for (float v : truth[i]) zeros += (v <= 1e-3f);
    if (zeros > most_zeros) {
      most_zeros = zeros;
      anomalous = i;
    }
  }

  struct Panel {
    const char* title;
    int64_t sensor;
  };
  std::vector<Panel> panels = {
      {"(a) regular daily pattern       [paper: sensor 105]", regular},
      {"(b) pattern change / event area [paper: sensor 5]", eventful},
      {"(c) noisy signal                [paper: sensor 49]", noisy},
      {"(d) anomalous sensor            [paper: sensor 78]", anomalous},
  };
  for (const Panel& p : panels) {
    metrics::MetricAccumulator acc;
    for (size_t k = 0; k < truth[p.sensor].size(); ++k) {
      acc.AddValue(pred[p.sensor][k], truth[p.sensor][k]);
    }
    std::printf("\n%s -> SynPEMS08 sensor %lld, 1-step MAE %.2f\n", p.title,
                static_cast<long long>(p.sensor), acc.Mae());
    AsciiChart(truth[p.sensor], pred[p.sensor]);
  }

  // Dump all four panels to CSV (rows: time; cols: truth/pred pairs).
  int64_t len = static_cast<int64_t>(truth[regular].size());
  tensor::Tensor csv({len, 8});
  for (int64_t t = 0; t < len; ++t) {
    int64_t c = 0;
    for (const Panel& p : panels) {
      csv.data()[t * 8 + c++] = truth[p.sensor][t];
      csv.data()[t * 8 + c++] = pred[p.sensor][t];
    }
  }
  std::string path = "fig6_case_study.csv";
  if (data::SaveCsv(csv, path).ok()) {
    std::printf("\nFull series written to %s "
                "(truth/pred pairs for the four panels)\n",
                path.c_str());
  }
  std::printf(
      "\nExpected shape (paper): predictions track daily peaks, adapt to\n"
      "pattern changes, stay reasonable under noise, and degrade gracefully\n"
      "on anomalous sensors.\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
