// Reproduces paper Table III: forecasting errors (MAE / RMSE / MAPE) of the
// full model zoo on the four SynPEMS datasets.
//
// Filters: DYHSL_MODELS=DyHSL,AGCRN ...  DYHSL_DATASETS=SynPEMS04,...
// Scale:   DYHSL_PROFILE=tiny|quick|full

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

void PrintTableTwoLine(const data::TrafficDataset& ds) {
  std::printf("  %-10s |V|=%lld |E|=%lld steps=%lld (paper-scaled)\n",
              ds.name().c_str(),
              static_cast<long long>(ds.num_nodes()),
              static_cast<long long>(
                  ds.network().graph.UndirectedEdgeCount()),
              static_cast<long long>(ds.num_steps()));
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Table III: forecasting errors on SynPEMS03/04/07/08",
                  env);

  std::vector<std::string> dataset_names = {"SynPEMS03", "SynPEMS04",
                                            "SynPEMS07", "SynPEMS08"};
  std::vector<data::TrafficDataset> datasets;
  std::printf("Datasets (Table II analogues):\n");
  for (const std::string& name : dataset_names) {
    if (!EnvListAllows("DYHSL_DATASETS", name)) continue;
    datasets.push_back(MakeDataset(name, env));
    PrintTableTwoLine(datasets.back());
  }
  std::printf("\n%-16s", "Model");
  for (const auto& ds : datasets) {
    std::printf(" | %-38s", ds.name().c_str());
  }
  std::printf("\n%-16s", "");
  for (size_t i = 0; i < datasets.size(); ++i) {
    std::printf(" | %-38s", "MAE    RMSE  MAPE   [paper MAE/RMSE/MAPE]");
  }
  std::printf("\n");

  for (const std::string& key : train::ClassicalModelKeys()) {
    if (!EnvListAllows("DYHSL_MODELS", key)) continue;
    std::printf("%-16s", key.c_str());
    for (const auto& ds : datasets) {
      metrics::ForecastMetrics m = RunClassical(key, ds, env);
      std::printf(" | %-38s", Cell(m, key, ds.name()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  for (const std::string& key : train::NeuralModelKeys()) {
    if (!EnvListAllows("DYHSL_MODELS", key)) continue;
    std::printf("%-16s", key.c_str());
    for (const auto& ds : datasets) {
      ModelRun run = RunNeural(key, ds, env);
      std::printf(" | %-38s", Cell(run.test, key, ds.name()).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): classical < sequence < graph models;\n"
      "DyHSL best or tied-best on every dataset, largest margin on the\n"
      "largest network (SynPEMS07).\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
