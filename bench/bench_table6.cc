// Reproduces paper Table VI: ablation of the Interactive Graph Convolution
// block (with vs without) on SynPEMS03 and SynPEMS04.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Table VI: IGC block ablation (w/ vs w/o)", env);

  struct Row {
    const char* label;
    bool use_igc;
    double paper_mae03, paper_mape03, paper_mae04, paper_mape04;
  };
  const std::vector<Row> rows = {
      {"w/", true, 15.49, 14.38, 17.66, 12.42},
      {"w/o", false, 16.95, 17.15, 17.99, 14.13},
  };

  std::vector<data::TrafficDataset> datasets;
  for (const char* name : {"SynPEMS03", "SynPEMS04"}) {
    if (EnvListAllows("DYHSL_DATASETS", name)) {
      datasets.push_back(MakeDataset(name, env));
    }
  }
  std::printf("%-5s", "IGC");
  for (const auto& ds : datasets) std::printf(" | %-52s", ds.name().c_str());
  std::printf("\n");

  for (const Row& row : rows) {
    std::printf("%-5s", row.label);
    for (size_t di = 0; di < datasets.size(); ++di) {
      const auto& ds = datasets[di];
      train::ForecastTask task = train::ForecastTask::FromDataset(ds);
      models::DyHslConfig cfg;
      cfg.hidden_dim = env.zoo_config.hidden_dim;
      cfg.prior_layers = 3;
      cfg.mhce_layers = 2;
      cfg.num_hyperedges = 16;
      cfg.use_igc = row.use_igc;
      cfg.seed = env.zoo_config.seed;
      models::DyHsl model(task, cfg);
      train::TrainModel(&model, ds, AblationTrainConfig(env));
      train::EvalResult ev = train::EvaluateModel(
          &model, ds, ds.test_range(), env.knobs.batch_size, 24);
      double pm = di == 0 ? row.paper_mae03 : row.paper_mae04;
      double pp = di == 0 ? row.paper_mape03 : row.paper_mape04;
      char buf[104];
      std::snprintf(
          buf, sizeof(buf),
          "MAE %6.2f RMSE %6.2f MAPE %5.1f%% [paper %.2f/%.1f%%]",
          ev.overall.mae, ev.overall.rmse, ev.overall.mape, pm, pp);
      std::printf(" | %-52s", buf);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): removing IGC raises every metric, with\n"
      "RMSE and MAPE hit hardest (high-order neighborhood interaction\n"
      "prevents large errors and helps low-flow event regimes).\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
