// Sharded-serving benchmark: single engine vs 2- and 4-way ForecastRouter
// fleets over an N=1024 synthetic network — closed-loop throughput,
// latency percentiles, and peak RSS per configuration.
//
//   $ ./build/bench_shard                       # prints a table
//   $ ./build/bench_shard --check-floor=0.9     # CI guard (see below)
//   $ DYHSL_BENCH_OUT=BENCH_shard.json ./build/bench_shard
//
// Each configuration runs in a forked child process so its peak RSS
// (wait4 -> ru_maxrss) is attributable to that configuration alone —
// peak RSS is monotonic within a process, so measuring three fleets
// in-process would charge the first one's high-water mark to all three.
//
// --check-floor=R exits non-zero if the 2-shard router's aggregate req/s
// falls below R x the single-engine baseline: sharding pays halo
// recompute and stitching, but on one core it must stay within that
// margin of the monolith (its win is memory footprint per engine and the
// ability to spread shards across processes/hosts).
//
// Scale: DYHSL_PROFILE=tiny|quick|full adjusts request counts only; the
// model is always an STGCN (hidden 16) on the N=1024 ring network, so
// numbers are comparable across profiles and CI runs.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/graph/shard.h"
#include "src/serve/router.h"
#include "src/train/model_zoo.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kNodes = 1024;
constexpr int64_t kHistory = 12;
constexpr int64_t kHalo = 2;       // STGCN: 1 conv hop + 1 fringe-degree hop
constexpr int64_t kHidden = 16;
constexpr int kClients = 4;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(values.size() - 1));
  return values[idx];
}

struct PhaseResult {
  std::string name;
  int64_t shards = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double peak_rss_mb = 0.0;
};

// Closed loop against the router: kClients threads, each submitting
// back-to-back and waiting for every response. Returns false if any
// request failed — failures are fast, so counting them as served
// traffic would let a broken fleet *beat* the throughput floor.
bool RunLoad(serve::ForecastRouter* router, const T::Tensor& window,
             int per_client, double* rps, double* p50, double* p99) {
  std::vector<std::vector<double>> latencies(kClients);
  std::vector<int64_t> failures(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  Clock::time_point start = Clock::now();
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < per_client; ++i) {
        Clock::time_point sent = Clock::now();
        serve::ForecastResponse response =
            router->Submit(serve::RouterRequest{"m", window.Clone()}).get();
        if (!response.status.ok()) {
          failures[c] += 1;
          std::fprintf(stderr, "serve error: %s\n",
                       response.status.ToString().c_str());
          continue;
        }
        latencies[c].push_back(MsSince(sent));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall_ms = MsSince(start);
  std::vector<double> all;
  int64_t failed = 0;
  for (int c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    failed += failures[c];
  }
  *rps = wall_ms > 0.0
             ? 1000.0 * static_cast<double>(all.size()) / wall_ms
             : 0.0;
  *p50 = Percentile(all, 50.0);
  *p99 = Percentile(all, 99.0);
  return failed == 0;
}

// Builds the fleet for `shards` (1 = unsharded engine behind the router,
// so dispatch overhead is identical across configurations), runs the
// closed loop, and reports through `out`.
int RunPhaseInChild(int64_t shards, int per_client, int out_fd) {
  ConfigureParallelism();
  train::ForecastTask task = train::RingForecastTask(kNodes, kHistory);
  train::ZooConfig zoo;
  zoo.hidden_dim = kHidden;
  serve::EngineOptions options;
  options.max_batch = 8;
  options.max_delay_us = 2000;
  auto created = serve::ForecastRouter::Create();
  if (!created.ok()) return 1;
  auto router = std::move(created).ValueOrDie();
  Status added =
      shards == 1
          ? router->AddModel("m", task, serve::ZooFactory("STGCN", zoo), "",
                             options)
          : router->AddShardedModel(
                "m", task,
                graph::ShardPlan::Build(task.spatial_adj, shards, kHalo),
                serve::ZooFactory("STGCN", zoo), "", options);
  if (!added.ok()) {
    std::fprintf(stderr, "fleet bring-up: %s\n", added.ToString().c_str());
    return 1;
  }
  Rng rng(1);
  T::Tensor window =
      T::Tensor::Randn({kHistory, kNodes, 3}, &rng, 0.5f);
  double rps = 0.0, p50 = 0.0, p99 = 0.0;
  if (!RunLoad(router.get(), window, std::max(2, per_client / 4), &rps, &p50,
               &p99)) {  // warm the worker arenas
    return 1;
  }
  if (!RunLoad(router.get(), window, per_client, &rps, &p50, &p99)) return 1;
  char line[128];
  int len = std::snprintf(line, sizeof(line), "%.3f %.4f %.4f\n", rps, p50,
                          p99);
  if (write(out_fd, line, static_cast<size_t>(len)) != len) return 1;
  return 0;
}

// Forks the phase so the parent can attribute ru_maxrss to it alone.
bool RunPhase(const std::string& name, int64_t shards, int per_client,
              PhaseResult* result) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    close(fds[0]);
    int code = RunPhaseInChild(shards, per_client, fds[1]);
    close(fds[1]);
    _exit(code);
  }
  close(fds[1]);
  char buffer[128];
  ssize_t got = 0;
  size_t used = 0;
  while (used + 1 < sizeof(buffer) &&
         (got = read(fds[0], buffer + used, sizeof(buffer) - 1 - used)) > 0) {
    used += static_cast<size_t>(got);
  }
  buffer[used] = '\0';
  close(fds[0]);
  int status = 0;
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (wait4(pid, &status, 0, &usage) != pid) return false;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) return false;
  result->name = name;
  result->shards = shards;
  if (std::sscanf(buffer, "%lf %lf %lf", &result->throughput_rps,
                  &result->p50_ms, &result->p99_ms) != 3) {
    return false;
  }
  result->peak_rss_mb =
      static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB -> MB on Linux
  return true;
}

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  double check_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    }
  }
  RunProfile profile = GetRunProfile();
  int per_client =
      profile == RunProfile::kTiny ? 8 : (profile == RunProfile::kQuick ? 24 : 48);

  std::printf("=== bench_shard (N=%lld, STGCN d=%lld, halo=%lld, "
              "%d clients x %d requests) ===\n",
              static_cast<long long>(kNodes),
              static_cast<long long>(kHidden),
              static_cast<long long>(kHalo), kClients, per_client);

  struct PhaseSpec {
    const char* name;
    int64_t shards;
  };
  const PhaseSpec specs[] = {{"single", 1}, {"x2", 2}, {"x4", 4}};
  std::vector<PhaseResult> results;
  for (const PhaseSpec& spec : specs) {
    PhaseResult result;
    if (!RunPhase(spec.name, spec.shards, per_client, &result)) {
      std::fprintf(stderr, "phase %s failed\n", spec.name);
      return 1;
    }
    std::printf("%-7s %lld shard(s)  %8.1f req/s   p50 %7.2f ms   "
                "p99 %7.2f ms   peak RSS %7.1f MB\n",
                result.name.c_str(), static_cast<long long>(result.shards),
                result.throughput_rps, result.p50_ms, result.p99_ms,
                result.peak_rss_mb);
    results.push_back(std::move(result));
  }
  double ratio_x2 = results[0].throughput_rps > 0.0
                        ? results[1].throughput_rps / results[0].throughput_rps
                        : 0.0;
  std::printf("2-shard aggregate throughput: %.2fx of single-engine\n",
              ratio_x2);

  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_shard.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"model\": \"STGCN\",\n");
  std::fprintf(out, "  \"nodes\": %lld,\n", static_cast<long long>(kNodes));
  std::fprintf(out, "  \"hidden_dim\": %lld,\n",
               static_cast<long long>(kHidden));
  std::fprintf(out, "  \"halo_hops\": %lld,\n", static_cast<long long>(kHalo));
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"clients\": %d,\n", kClients);
  std::fprintf(out, "  \"requests_per_client\": %d,\n", per_client);
  std::fprintf(out, "  \"x2_vs_single_throughput\": %.4f,\n", ratio_x2);
  std::fprintf(out, "  \"phases\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"shards\": %lld, "
                 "\"throughput_rps\": %.2f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"peak_rss_mb\": %.1f}%s\n",
                 results[i].name.c_str(),
                 static_cast<long long>(results[i].shards),
                 results[i].throughput_rps, results[i].p50_ms,
                 results[i].p99_ms, results[i].peak_rss_mb,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0 && ratio_x2 < check_floor) {
    std::fprintf(stderr,
                 "FAIL: 2-shard router throughput ratio %.3f below floor "
                 "%.3f\n",
                 ratio_x2, check_floor);
    return 1;
  }
  return 0;
}
