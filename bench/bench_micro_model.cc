// google-benchmark suite validating the paper's section IV-D complexity
// claim: DyHSL's forward+backward cost grows linearly with the network
// size ||A||_0 (ring roads of increasing N) and with the observation
// length T. Also measures forward latency of DyHSL next to two baselines.

#include <benchmark/benchmark.h>

#include "src/autograd/inference.h"
#include "src/autograd/ops.h"
#include "src/data/dataset.h"
#include "src/models/dyhsl.h"
#include "src/train/model_zoo.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;

// Synthetic task over a ring road of n sensors, without a full dataset.
using train::RingForecastTask;

models::DyHslConfig SmallConfig() {
  models::DyHslConfig cfg;
  cfg.hidden_dim = 16;
  cfg.prior_layers = 2;
  cfg.mhce_layers = 1;
  cfg.num_hyperedges = 8;
  cfg.window_sizes = {1, 3, 12};
  cfg.dropout = 0.0f;
  return cfg;
}

// Linear scaling in the number of nodes (||A||_0 proportional to N here).
void BM_DyHslForwardBackward_Nodes(benchmark::State& state) {
  int64_t n = state.range(0);
  train::ForecastTask task = RingForecastTask(n, 12);
  models::DyHsl model(task, SmallConfig());
  Rng rng(1);
  T::Tensor x = T::Tensor::Randn({4, 12, n, 3}, &rng, 0.5f);
  for (auto _ : state) {
    autograd::Variable out = model.Forward(x, /*training=*/true);
    autograd::Variable loss = autograd::MeanAll(out);
    loss.Backward();
    for (auto& p : model.Parameters()) p.ZeroGrad();
    benchmark::DoNotOptimize(loss.value().data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["nodes"] = static_cast<double>(n);
}
BENCHMARK(BM_DyHslForwardBackward_Nodes)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Linear scaling in the observation length T (window sizes fixed to
// divisors of every tested T).
void BM_DyHslForwardBackward_History(benchmark::State& state) {
  int64_t t_in = state.range(0);
  train::ForecastTask task = RingForecastTask(48, t_in);
  models::DyHslConfig cfg = SmallConfig();
  cfg.window_sizes = {1, t_in / 2, t_in};
  models::DyHsl model(task, cfg);
  Rng rng(2);
  T::Tensor x = T::Tensor::Randn({4, t_in, 48, 3}, &rng, 0.5f);
  for (auto _ : state) {
    autograd::Variable out = model.Forward(x, /*training=*/true);
    autograd::Variable loss = autograd::MeanAll(out);
    loss.Backward();
    for (auto& p : model.Parameters()) p.ZeroGrad();
    benchmark::DoNotOptimize(loss.value().data()[0]);
  }
  state.counters["T"] = static_cast<double>(t_in);
}
BENCHMARK(BM_DyHslForwardBackward_History)
    ->Arg(6)
    ->Arg(12)
    ->Arg(24)
    ->Unit(benchmark::kMillisecond);

// Inference latency: DyHSL vs representative baselines at equal size.
template <const char* kKey>
void BM_ModelForward(benchmark::State& state) {
  train::ForecastTask task = RingForecastTask(64, 12);
  train::ZooConfig zoo;
  zoo.hidden_dim = 16;
  auto model = train::MakeNeuralModel(kKey, task, zoo);
  Rng rng(3);
  T::Tensor x = T::Tensor::Randn({4, 12, 64, 3}, &rng, 0.5f);
  autograd::InferenceModeGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model->Forward(x, /*training=*/false).value().data()[0]);
  }
}
constexpr char kDyHsl[] = "DyHSL";
constexpr char kStgode[] = "STGODE";
constexpr char kAgcrn[] = "AGCRN";
BENCHMARK_TEMPLATE(BM_ModelForward, kDyHsl)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ModelForward, kStgode)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ModelForward, kAgcrn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dyhsl

BENCHMARK_MAIN();
