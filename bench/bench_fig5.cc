// Reproduces paper Fig. 5: hyperparameter sensitivity of DyHSL on
// SynPEMS04 and SynPEMS08. Three sweeps (rows of the figure):
//   1. hidden layers Ls in {1, 2, 3, 4}
//   2. hyperedges   I  in {8, 16, 32, 64}
//   3. hidden dim   d  in {16, 32, 64, 128}
// Each prints MAE / RMSE / MAPE series (the figure's y-axes).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

models::DyHslConfig BaseConfig(const BenchEnv& env) {
  models::DyHslConfig cfg;
  cfg.hidden_dim = env.zoo_config.hidden_dim;
  cfg.prior_layers = 3;
  cfg.mhce_layers = 2;
  cfg.num_hyperedges = 16;
  cfg.seed = env.zoo_config.seed;
  return cfg;
}

void RunPoint(const data::TrafficDataset& ds, const BenchEnv& env,
              const models::DyHslConfig& cfg, const char* tag, long value) {
  train::ForecastTask task = train::ForecastTask::FromDataset(ds);
  models::DyHsl model(task, cfg);
  // The sensitivity *trends* need consistent, not fully converged,
  // training; halving the schedule keeps the 24-point sweep tractable.
  train::TrainConfig tc = env.train_config;
  tc.epochs = std::max<int64_t>(2, tc.epochs / 2);
  models::DyHsl* m = &model;
  train::TrainModel(m, ds, tc);
  train::EvalResult ev = train::EvaluateModel(m, ds, ds.test_range(),
                                              env.knobs.batch_size, 16);
  std::printf("  %s=%-4ld  MAE %6.2f  RMSE %6.2f  MAPE %5.1f%%\n", tag,
              value, ev.overall.mae, ev.overall.rmse, ev.overall.mape);
  std::fflush(stdout);
}

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Fig. 5: hyperparameter sensitivity (Ls, I, d)", env);
  // Keep the d sweep tractable on CPU profiles.
  std::vector<int64_t> d_sweep =
      env.profile == RunProfile::kFull
          ? std::vector<int64_t>{16, 32, 64, 128}
          : std::vector<int64_t>{8, 16, 32, 48};

  for (const char* name : {"SynPEMS04", "SynPEMS08"}) {
    if (!EnvListAllows("DYHSL_DATASETS", name)) continue;
    data::TrafficDataset ds = MakeDataset(name, env);
    std::printf("--- %s ---\n", name);
    std::printf(" sweep Ls (paper: flat curve, best at 2):\n");
    for (int64_t ls : {1, 2, 3, 4}) {
      models::DyHslConfig cfg = BaseConfig(env);
      cfg.mhce_layers = ls;
      RunPoint(ds, env, cfg, "Ls", ls);
    }
    std::printf(" sweep I (paper: flat curve, best at 32):\n");
    for (int64_t i : {8, 16, 32, 64}) {
      models::DyHslConfig cfg = BaseConfig(env);
      cfg.num_hyperedges = i;
      RunPoint(ds, env, cfg, "I", i);
    }
    std::printf(" sweep d (paper: poor when very small, saturates at 64):\n");
    for (int64_t d : d_sweep) {
      models::DyHslConfig cfg = BaseConfig(env);
      cfg.hidden_dim = d;
      RunPoint(ds, env, cfg, "d", d);
    }
  }
  std::printf(
      "\nExpected shape (paper): insensitive to Ls and I; clearly worse at\n"
      "very small d, saturating at moderate d. SynPEMS08 less sensitive\n"
      "than SynPEMS04.\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
