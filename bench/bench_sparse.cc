// Dense-vs-sparse crossover benchmark for the structure operators.
//
//   $ ./build/bench_sparse                     # prints a table
//   $ ./build/bench_sparse --check-floor=1.0   # + fail if sparse loses at
//                                              #   N=1024 graph propagation
//
// Three operator families, each timed dense (materialized (N,N) GEMM) and
// sparse at N ∈ {207, 512, 1024, 2048}:
//
//  * graph       — symmetric-normalized road adjacency × (N, d) features,
//                  the per-step propagation of every graph baseline and
//                  (via the temporal graph) the DyHSL prior encoder
//  * hypergraph  — predefined-district propagation G = D_v⁻¹ Λ D_e⁻¹ Λᵀ,
//                  timed as the materialized product operator and as the
//                  factored two-SpMM form
//  * dhsl_topk   — the DHSL block's Eq. 7/8 incidence products on a
//                  (R, I) learned Λ: dense BatchedMatMul vs top-k
//                  sparsification + CSR products (selection cost included),
//                  plus the cached-refresh mode (TopKPatternCache reuse +
//                  O(nnz) value gather under a light per-step drift) with
//                  its exact-vs-stale accuracy delta
//
// Results land in BENCH_sparse.json (override with DYHSL_BENCH_OUT). CI
// regression floors (--check-floor=X): graph propagation at N=1024 and
// dhsl_topk_i32 at N=207 (each mode's best; --skip-dhsl-floor exempts the
// latter for scalar-dispatch builds where vector selection is off), and
// the dhsl_topk_i32 speedup must be non-decreasing in N (0.9x tolerance).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/hypergraph/hypergraph.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kFeatureDim = 64;
constexpr int64_t kHyperedgesPerNodeGroup = 16;  // |e| ~ 2 * group size
constexpr int64_t kDhslHyperedges = 32;          // paper I
constexpr int64_t kDhslTopK = 4;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Ring road network with ±1..±3 neighbors: average degree 6, the ballpark
// of real sensor graphs (PEMS adjacencies average 3-8 neighbors).
T::CsrMatrix RingRoadNetwork(int64_t n) {
  std::vector<T::Triplet> edges;
  edges.reserve(n * 6);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t hop = 1; hop <= 3; ++hop) {
      edges.push_back({i, (i + hop) % n, 1.0f / hop});
      edges.push_back({i, (i - hop + n) % n, 1.0f / hop});
    }
  }
  return T::CsrMatrix::FromTriplets(n, n, std::move(edges));
}

// District hypergraph: contiguous groups of kHyperedgesPerNodeGroup nodes,
// each node also joining the next group (overlap makes |e| ~ 32).
T::CsrMatrix DistrictIncidence(int64_t n) {
  int64_t num_edges = (n + kHyperedgesPerNodeGroup - 1) /
                      kHyperedgesPerNodeGroup;
  std::vector<T::Triplet> inc;
  inc.reserve(2 * n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t e = i / kHyperedgesPerNodeGroup;
    inc.push_back({i, e, 1.0f});
    inc.push_back({i, (e + 1) % num_edges, 0.5f});
  }
  return T::CsrMatrix::FromTriplets(n, num_edges, std::move(inc));
}

// Best-of-`rounds` mean ms per call, dense and sparse bursts interleaved
// so machine-state drift cannot bias one side.
struct Timed {
  double dense_ms = 1e30;
  double sparse_ms = 1e30;
};

template <typename DenseFn, typename SparseFn>
Timed TimePair(DenseFn dense, SparseFn sparse, int iters, int rounds) {
  dense();  // warm both paths (page-in, allocator growth)
  sparse();
  Timed best;
  for (int r = 0; r < rounds; ++r) {
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < iters; ++i) dense();
    best.dense_ms = std::min(best.dense_ms, MsSince(t0) / iters);
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) sparse();
    best.sparse_ms = std::min(best.sparse_ms, MsSince(t0) / iters);
  }
  return best;
}

struct Entry {
  const char* op;
  int64_t nodes;
  int64_t nnz;
  double dense_ms;
  double sparse_ms;
  double extra_ms;  // hypergraph: factored form; otherwise 0
  double speedup;
  double cached_ms = 0.0;       // dhsl: pattern-reuse mode; otherwise 0
  double stale_rel_err = 0.0;   // dhsl: cached-vs-exact product delta
};

volatile float g_sink;

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  ConfigureParallelism();
  double check_floor = -1.0;
  bool skip_dhsl_floor = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--skip-dhsl-floor") == 0) {
      // Scalar-dispatch builds (DYHSL_SIMD=scalar, non-AVX hardware) keep
      // the graph floor but are exempt from the vector-selection one.
      skip_dhsl_floor = true;
    }
  }
  RunProfile profile = GetRunProfile();
  const int iters = profile == RunProfile::kTiny ? 3 : 10;
  const int rounds = profile == RunProfile::kTiny ? 3 : 5;

  Rng rng(7);
  std::vector<int64_t> sizes = {207, 512, 1024, 2048};
  std::vector<Entry> entries;

  std::printf("=== bench_sparse (d=%lld, %s profile) ===\n",
              static_cast<long long>(kFeatureDim), RunProfileName(profile));
  std::printf("%-12s %6s %10s %11s %11s %9s\n", "op", "N", "nnz",
              "dense ms", "sparse ms", "speedup");

  for (int64_t n : sizes) {
    // --- graph propagation: A X ---------------------------------------
    T::CsrMatrix adj = RingRoadNetwork(n).WithSelfLoops().SymNormalized();
    T::Tensor adj_dense = adj.ToDense();
    T::Tensor x = T::Tensor::Randn({n, kFeatureDim}, &rng, 0.5f);
    Timed graph = TimePair(
        [&] { g_sink = T::MatMul(adj_dense, x).data()[0]; },
        [&] { g_sink = T::SpMM(adj, x).data()[0]; }, iters, rounds);
    entries.push_back({"graph", n, adj.nnz(), graph.dense_ms,
                       graph.sparse_ms, 0.0,
                       graph.dense_ms / graph.sparse_ms});

    // --- hypergraph propagation: G X (product vs factored) ------------
    T::CsrMatrix inc = DistrictIncidence(n);
    hypergraph::Hypergraph hg(n, inc.cols(), inc);
    hypergraph::FactoredIncidence factors = hg.FactoredOperator();
    const T::CsrMatrix& n2e = factors.node_to_edge.matrix();
    const T::CsrMatrix& e2n = factors.edge_to_node.matrix();
    // Materialized product G = e2n * n2e via the dense route (bench setup
    // only), then re-sparsified for the sparse product timing.
    T::Tensor g_dense = T::MatMul(e2n.ToDense(), n2e.ToDense());
    T::CsrMatrix g_sparse = T::RowThreshold(g_dense, 1e-12f);
    Timed hyper = TimePair(
        [&] { g_sink = T::MatMul(g_dense, x).data()[0]; },
        [&] { g_sink = T::SpMM(g_sparse, x).data()[0]; }, iters, rounds);
    Clock::time_point tf = Clock::now();
    for (int i = 0; i < iters; ++i) {
      g_sink = T::SpMM(e2n, T::SpMM(n2e, x)).data()[0];
    }
    double factored_ms = MsSince(tf) / iters;
    double hyper_best = std::min(hyper.sparse_ms, factored_ms);
    entries.push_back({"hypergraph", n, g_sparse.nnz(), hyper.dense_ms,
                       hyper.sparse_ms, factored_ms,
                       hyper.dense_ms / hyper_best});

    // --- DHSL incidence products: ΛᵀH then ΛE -------------------------
    // R = 3N rows ~ the ε=4 pooled scale of a T=12 window; top-k timing
    // includes selection + pattern build (the price the sparse mode pays
    // every step). Two hyperedge counts: the paper default I=32 (where
    // the dense GEMM's flop efficiency roughly cancels the I/k flop
    // advantage — dense stays the default for a reason) and I=128, the
    // scaled-up regime the top-k mode exists for.
    int64_t rows = 3 * n;
    T::Tensor h = T::Tensor::Randn({rows, kFeatureDim}, &rng, 0.5f);
    struct DhslShape {
      const char* name;
      int64_t hyperedges;
      int64_t topk;
    };
    for (DhslShape shape : {DhslShape{"dhsl_topk_i32", kDhslHyperedges,
                                      kDhslTopK},
                            DhslShape{"dhsl_topk_i128", 128, 8}}) {
      T::Tensor lam =
          T::Tensor::Randn({rows, shape.hyperedges}, &rng, 0.5f);
      T::Tensor edges_feat =
          T::Tensor::Randn({shape.hyperedges, kFeatureDim}, &rng, 0.5f);
      auto dense_step = [&] {
        g_sink = T::MatMul(lam, h, /*trans_a=*/true).data()[0];
        g_sink = T::MatMul(lam, edges_feat).data()[0];
      };
      auto sparse_step = [&] {
        T::Tensor vals({rows * shape.topk});
        auto p = T::RowTopKPattern(lam.data(), rows, shape.hyperedges,
                                   shape.topk, vals.data());
        g_sink = T::SpMMPattern(*p, vals, h, /*trans_a=*/true).data()[0];
        g_sink = T::SpMMPattern(*p, vals, edges_feat, false).data()[0];
      };
      // Cached-refresh mode: the pattern is reused across steps and only
      // the kept values are re-gathered; ~1% of Λ's rows get a small
      // additive perturbation per step, modeling how the learned incidence
      // moves between adjacent time steps. Drift accumulates, so the
      // timing honestly amortizes the periodic forced re-selections.
      T::Tensor lam_drift = lam.Clone();
      T::TopKPatternCache cache;
      Rng drift_rng(11);
      const int64_t drift_rows = std::max<int64_t>(1, rows / 100);
      auto cached_step = [&] {
        for (int64_t j = 0; j < drift_rows; ++j) {
          int64_t r = static_cast<int64_t>(drift_rng.NextBelow(rows));
          int64_t c = static_cast<int64_t>(
              drift_rng.NextBelow(shape.hyperedges));
          lam_drift.data()[r * shape.hyperedges + c] += 0.01f;
        }
        auto p = cache.SelectOrReuse(0, lam_drift.data(), rows,
                                     shape.hyperedges, shape.topk);
        T::Tensor vals({p->nnz()});
        T::GatherPatternSlice(*p, lam_drift.data(), vals.data());
        g_sink = T::SpMMPattern(*p, vals, h, /*trans_a=*/true).data()[0];
        g_sink = T::SpMMPattern(*p, vals, edges_feat, false).data()[0];
      };
      // All three modes interleave inside each round so machine-state
      // drift cannot bias any one of them (same policy as TimePair).
      dense_step();
      sparse_step();
      cached_step();  // warm (the cold selection happens here)
      Timed dhsl;
      double cached_ms = 1e30;
      for (int r = 0; r < rounds; ++r) {
        Clock::time_point t0 = Clock::now();
        for (int i = 0; i < iters; ++i) dense_step();
        dhsl.dense_ms = std::min(dhsl.dense_ms, MsSince(t0) / iters);
        t0 = Clock::now();
        for (int i = 0; i < iters; ++i) sparse_step();
        dhsl.sparse_ms = std::min(dhsl.sparse_ms, MsSince(t0) / iters);
        t0 = Clock::now();
        for (int i = 0; i < iters; ++i) cached_step();
        cached_ms = std::min(cached_ms, MsSince(t0) / iters);
      }
      // Exact-vs-stale accuracy delta at the final drifted state: the
      // cached pattern's ΛᵀH against a fresh selection's.
      auto cached_p = cache.SelectOrReuse(0, lam_drift.data(), rows,
                                          shape.hyperedges, shape.topk);
      T::Tensor cached_vals({cached_p->nnz()});
      T::GatherPatternSlice(*cached_p, lam_drift.data(),
                            cached_vals.data());
      T::Tensor fresh_vals({rows * shape.topk});
      auto fresh_p =
          T::RowTopKPattern(lam_drift.data(), rows, shape.hyperedges,
                            shape.topk, fresh_vals.data());
      T::Tensor cached_out =
          T::SpMMPattern(*cached_p, cached_vals, h, /*trans_a=*/true);
      T::Tensor fresh_out =
          T::SpMMPattern(*fresh_p, fresh_vals, h, /*trans_a=*/true);
      double scale = 1.0, max_abs = 0.0;
      for (int64_t i = 0; i < fresh_out.numel(); ++i) {
        scale = std::max(scale,
                         static_cast<double>(std::fabs(fresh_out.data()[i])));
        max_abs = std::max(
            max_abs, static_cast<double>(std::fabs(
                         fresh_out.data()[i] - cached_out.data()[i])));
      }
      double stale_rel_err = max_abs / scale;

      double dhsl_best = std::min(dhsl.sparse_ms, cached_ms);
      entries.push_back({shape.name, n, rows * shape.topk, dhsl.dense_ms,
                         dhsl.sparse_ms, 0.0, dhsl.dense_ms / dhsl_best,
                         cached_ms, stale_rel_err});
    }

    for (size_t i = entries.size() - 4; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      std::printf("%-12s %6lld %10lld %11.3f %11.3f %8.2fx\n", e.op,
                  static_cast<long long>(e.nodes),
                  static_cast<long long>(e.nnz), e.dense_ms, e.sparse_ms,
                  e.speedup);
      if (e.cached_ms > 0.0) {
        std::printf("%-12s %6s %10s %11s %11.3f   (stale_rel_err %.1e)\n",
                    "  cached", "", "", "", e.cached_ms, e.stale_rel_err);
      }
    }
  }

  // JSON artifact.
  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_sparse.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  double floor_speedup = 0.0;
  double dhsl_floor_speedup = 0.0;
  std::vector<double> dhsl_i32_speedups;  // in size order
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"feature_dim\": %lld,\n",
               static_cast<long long>(kFeatureDim));
  std::fprintf(out, "  \"dhsl\": {\"hyperedges\": %lld, \"topk\": %lld},\n",
               static_cast<long long>(kDhslHyperedges),
               static_cast<long long>(kDhslTopK));
  std::fprintf(out, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (std::strcmp(e.op, "graph") == 0 && e.nodes == 1024) {
      floor_speedup = e.speedup;
    }
    if (std::strcmp(e.op, "dhsl_topk_i32") == 0) {
      if (e.nodes == 207) dhsl_floor_speedup = e.speedup;
      dhsl_i32_speedups.push_back(e.speedup);
    }
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"nodes\": %lld, \"nnz\": %lld, "
                 "\"dense_ms\": %.4f, \"sparse_ms\": %.4f, "
                 "\"factored_ms\": %.4f, \"cached_ms\": %.4f, "
                 "\"stale_rel_err\": %.3e, \"speedup\": %.3f}%s\n",
                 e.op, static_cast<long long>(e.nodes),
                 static_cast<long long>(e.nnz), e.dense_ms, e.sparse_ms,
                 e.extra_ms, e.cached_ms, e.stale_rel_err, e.speedup,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"floor\": {\"op\": \"graph\", \"nodes\": 1024, "
               "\"speedup\": %.3f},\n",
               floor_speedup);
  std::fprintf(out,
               "  \"dhsl_floor\": {\"op\": \"dhsl_topk_i32\", \"nodes\": "
               "207, \"speedup\": %.3f}\n",
               dhsl_floor_speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0 && floor_speedup < check_floor) {
    std::fprintf(stderr,
                 "FAIL: graph propagation speedup %.3f at N=1024 is below "
                 "the required floor %.3f\n",
                 floor_speedup, check_floor);
    return 1;
  }
  if (check_floor > 0.0 && !skip_dhsl_floor) {
    if (dhsl_floor_speedup < check_floor) {
      std::fprintf(stderr,
                   "FAIL: dhsl_topk_i32 speedup %.3f at N=207 is below the "
                   "required floor %.3f\n",
                   dhsl_floor_speedup, check_floor);
      return 1;
    }
    // The sparse advantage must hold (or grow) as N does — a shrinking
    // gap means the selection/cache kernels regressed at scale. The 0.8x
    // allowance absorbs run-to-run timer noise at the largest sizes
    // (observed ~±10% on shared runners) while still catching a real
    // scaling regression, which shows up as a monotone slide, not a blip.
    for (size_t i = 1; i < dhsl_i32_speedups.size(); ++i) {
      if (dhsl_i32_speedups[i] < 0.8 * dhsl_i32_speedups[i - 1]) {
        std::fprintf(stderr,
                     "FAIL: dhsl_topk_i32 speedup is not non-decreasing in "
                     "N: %.3f after %.3f\n",
                     dhsl_i32_speedups[i], dhsl_i32_speedups[i - 1]);
        return 1;
      }
    }
  }
  return 0;
}
