// Dense-vs-sparse crossover benchmark for the structure operators.
//
//   $ ./build/bench_sparse                     # prints a table
//   $ ./build/bench_sparse --check-floor=1.0   # + fail if sparse loses at
//                                              #   N=1024 graph propagation
//
// Three operator families, each timed dense (materialized (N,N) GEMM) and
// sparse at N ∈ {207, 512, 1024, 2048}:
//
//  * graph       — symmetric-normalized road adjacency × (N, d) features,
//                  the per-step propagation of every graph baseline and
//                  (via the temporal graph) the DyHSL prior encoder
//  * hypergraph  — predefined-district propagation G = D_v⁻¹ Λ D_e⁻¹ Λᵀ,
//                  timed as the materialized product operator and as the
//                  factored two-SpMM form
//  * dhsl_topk   — the DHSL block's Eq. 7/8 incidence products on a
//                  (R, I) learned Λ: dense BatchedMatMul vs top-k
//                  sparsification + CSR products (selection cost included)
//
// Results land in BENCH_sparse.json (override with DYHSL_BENCH_OUT); the
// graph-propagation speedup at N=1024 is the CI regression floor.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/hypergraph/hypergraph.h"
#include "src/tensor/ops.h"
#include "src/tensor/sparse.h"
#include "src/tensor/tensor.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kFeatureDim = 64;
constexpr int64_t kHyperedgesPerNodeGroup = 16;  // |e| ~ 2 * group size
constexpr int64_t kDhslHyperedges = 32;          // paper I
constexpr int64_t kDhslTopK = 4;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Ring road network with ±1..±3 neighbors: average degree 6, the ballpark
// of real sensor graphs (PEMS adjacencies average 3-8 neighbors).
T::CsrMatrix RingRoadNetwork(int64_t n) {
  std::vector<T::Triplet> edges;
  edges.reserve(n * 6);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t hop = 1; hop <= 3; ++hop) {
      edges.push_back({i, (i + hop) % n, 1.0f / hop});
      edges.push_back({i, (i - hop + n) % n, 1.0f / hop});
    }
  }
  return T::CsrMatrix::FromTriplets(n, n, std::move(edges));
}

// District hypergraph: contiguous groups of kHyperedgesPerNodeGroup nodes,
// each node also joining the next group (overlap makes |e| ~ 32).
T::CsrMatrix DistrictIncidence(int64_t n) {
  int64_t num_edges = (n + kHyperedgesPerNodeGroup - 1) /
                      kHyperedgesPerNodeGroup;
  std::vector<T::Triplet> inc;
  inc.reserve(2 * n);
  for (int64_t i = 0; i < n; ++i) {
    int64_t e = i / kHyperedgesPerNodeGroup;
    inc.push_back({i, e, 1.0f});
    inc.push_back({i, (e + 1) % num_edges, 0.5f});
  }
  return T::CsrMatrix::FromTriplets(n, num_edges, std::move(inc));
}

// Best-of-`rounds` mean ms per call, dense and sparse bursts interleaved
// so machine-state drift cannot bias one side.
struct Timed {
  double dense_ms = 1e30;
  double sparse_ms = 1e30;
};

template <typename DenseFn, typename SparseFn>
Timed TimePair(DenseFn dense, SparseFn sparse, int iters, int rounds) {
  dense();  // warm both paths (page-in, allocator growth)
  sparse();
  Timed best;
  for (int r = 0; r < rounds; ++r) {
    Clock::time_point t0 = Clock::now();
    for (int i = 0; i < iters; ++i) dense();
    best.dense_ms = std::min(best.dense_ms, MsSince(t0) / iters);
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) sparse();
    best.sparse_ms = std::min(best.sparse_ms, MsSince(t0) / iters);
  }
  return best;
}

struct Entry {
  const char* op;
  int64_t nodes;
  int64_t nnz;
  double dense_ms;
  double sparse_ms;
  double extra_ms;  // hypergraph: factored form; otherwise 0
  double speedup;
};

volatile float g_sink;

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  ConfigureParallelism();
  double check_floor = -1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    }
  }
  RunProfile profile = GetRunProfile();
  const int iters = profile == RunProfile::kTiny ? 3 : 10;
  const int rounds = profile == RunProfile::kTiny ? 3 : 5;

  Rng rng(7);
  std::vector<int64_t> sizes = {207, 512, 1024, 2048};
  std::vector<Entry> entries;

  std::printf("=== bench_sparse (d=%lld, %s profile) ===\n",
              static_cast<long long>(kFeatureDim), RunProfileName(profile));
  std::printf("%-12s %6s %10s %11s %11s %9s\n", "op", "N", "nnz",
              "dense ms", "sparse ms", "speedup");

  for (int64_t n : sizes) {
    // --- graph propagation: A X ---------------------------------------
    T::CsrMatrix adj = RingRoadNetwork(n).WithSelfLoops().SymNormalized();
    T::Tensor adj_dense = adj.ToDense();
    T::Tensor x = T::Tensor::Randn({n, kFeatureDim}, &rng, 0.5f);
    Timed graph = TimePair(
        [&] { g_sink = T::MatMul(adj_dense, x).data()[0]; },
        [&] { g_sink = T::SpMM(adj, x).data()[0]; }, iters, rounds);
    entries.push_back({"graph", n, adj.nnz(), graph.dense_ms,
                       graph.sparse_ms, 0.0,
                       graph.dense_ms / graph.sparse_ms});

    // --- hypergraph propagation: G X (product vs factored) ------------
    T::CsrMatrix inc = DistrictIncidence(n);
    hypergraph::Hypergraph hg(n, inc.cols(), inc);
    hypergraph::FactoredIncidence factors = hg.FactoredOperator();
    const T::CsrMatrix& n2e = factors.node_to_edge.matrix();
    const T::CsrMatrix& e2n = factors.edge_to_node.matrix();
    // Materialized product G = e2n * n2e via the dense route (bench setup
    // only), then re-sparsified for the sparse product timing.
    T::Tensor g_dense = T::MatMul(e2n.ToDense(), n2e.ToDense());
    T::CsrMatrix g_sparse = T::RowThreshold(g_dense, 1e-12f);
    Timed hyper = TimePair(
        [&] { g_sink = T::MatMul(g_dense, x).data()[0]; },
        [&] { g_sink = T::SpMM(g_sparse, x).data()[0]; }, iters, rounds);
    Clock::time_point tf = Clock::now();
    for (int i = 0; i < iters; ++i) {
      g_sink = T::SpMM(e2n, T::SpMM(n2e, x)).data()[0];
    }
    double factored_ms = MsSince(tf) / iters;
    double hyper_best = std::min(hyper.sparse_ms, factored_ms);
    entries.push_back({"hypergraph", n, g_sparse.nnz(), hyper.dense_ms,
                       hyper.sparse_ms, factored_ms,
                       hyper.dense_ms / hyper_best});

    // --- DHSL incidence products: ΛᵀH then ΛE -------------------------
    // R = 3N rows ~ the ε=4 pooled scale of a T=12 window; top-k timing
    // includes selection + pattern build (the price the sparse mode pays
    // every step). Two hyperedge counts: the paper default I=32 (where
    // the dense GEMM's flop efficiency roughly cancels the I/k flop
    // advantage — dense stays the default for a reason) and I=128, the
    // scaled-up regime the top-k mode exists for.
    int64_t rows = 3 * n;
    T::Tensor h = T::Tensor::Randn({rows, kFeatureDim}, &rng, 0.5f);
    struct DhslShape {
      const char* name;
      int64_t hyperedges;
      int64_t topk;
    };
    for (DhslShape shape : {DhslShape{"dhsl_topk_i32", kDhslHyperedges,
                                      kDhslTopK},
                            DhslShape{"dhsl_topk_i128", 128, 8}}) {
      T::Tensor lam =
          T::Tensor::Randn({rows, shape.hyperedges}, &rng, 0.5f);
      T::Tensor edges_feat =
          T::Tensor::Randn({shape.hyperedges, kFeatureDim}, &rng, 0.5f);
      Timed dhsl = TimePair(
          [&] {
            g_sink = T::MatMul(lam, h, /*trans_a=*/true).data()[0];
            g_sink = T::MatMul(lam, edges_feat).data()[0];
          },
          [&] {
            T::Tensor vals({rows * shape.topk});
            auto p = T::RowTopKPattern(lam.data(), rows, shape.hyperedges,
                                       shape.topk, vals.data());
            g_sink = T::SpMMPattern(*p, vals, h, /*trans_a=*/true).data()[0];
            g_sink = T::SpMMPattern(*p, vals, edges_feat, false).data()[0];
          },
          iters, rounds);
      entries.push_back({shape.name, n, rows * shape.topk, dhsl.dense_ms,
                         dhsl.sparse_ms, 0.0,
                         dhsl.dense_ms / dhsl.sparse_ms});
    }

    for (size_t i = entries.size() - 4; i < entries.size(); ++i) {
      const Entry& e = entries[i];
      std::printf("%-12s %6lld %10lld %11.3f %11.3f %8.2fx\n", e.op,
                  static_cast<long long>(e.nodes),
                  static_cast<long long>(e.nnz), e.dense_ms, e.sparse_ms,
                  e.speedup);
    }
  }

  // JSON artifact.
  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_sparse.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  double floor_speedup = 0.0;
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"feature_dim\": %lld,\n",
               static_cast<long long>(kFeatureDim));
  std::fprintf(out, "  \"dhsl\": {\"hyperedges\": %lld, \"topk\": %lld},\n",
               static_cast<long long>(kDhslHyperedges),
               static_cast<long long>(kDhslTopK));
  std::fprintf(out, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (std::strcmp(e.op, "graph") == 0 && e.nodes == 1024) {
      floor_speedup = e.speedup;
    }
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"nodes\": %lld, \"nnz\": %lld, "
                 "\"dense_ms\": %.4f, \"sparse_ms\": %.4f, "
                 "\"factored_ms\": %.4f, \"speedup\": %.3f}%s\n",
                 e.op, static_cast<long long>(e.nodes),
                 static_cast<long long>(e.nnz), e.dense_ms, e.sparse_ms,
                 e.extra_ms, e.speedup,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"floor\": {\"op\": \"graph\", \"nodes\": 1024, "
               "\"speedup\": %.3f}\n",
               floor_speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0 && floor_speedup < check_floor) {
    std::fprintf(stderr,
                 "FAIL: graph propagation speedup %.3f at N=1024 is below "
                 "the required floor %.3f\n",
                 floor_speedup, check_floor);
    return 1;
  }
  return 0;
}
