// Streaming-session benchmark: per-forecast latency and sustained tick
// rate of stateful sessions vs full-window resubmission.
//
//   $ ./build/bench_stream                    # prints a table
//   $ ./build/bench_stream --check-floor=2.5  # CI guard (see below)
//   $ DYHSL_BENCH_OUT=BENCH_stream.json ./build/bench_stream
//
// Scenario: an N=1024 sensor network ticking once per simulated 5-minute
// bin, with a forecast wanted after every tick.
//
//  * Baseline ("resubmit"): the client keeps the (T, N, F) window,
//    shifts it by one frame per tick, and submits the full window
//    through ForecastRouter::Submit — the batch path re-reads all
//    T x N x F floats and re-runs the model end to end every tick.
//  * Streamed ("session"): a warm SessionManager session. Append hands
//    the server N raw floats; the session advances the carried DCRNN
//    encoder one cell step and Forecast runs only the T'-step decoder
//    against the server-side ring. Per tick that is 1 + T' cell steps
//    instead of T + T', plus none of the window materialization.
//  * A stateless STGCN pair (windowed session vs resubmission) isolates
//    the transport/queue savings alone — no recurrent carry, the model
//    work is identical, so the gap is window assembly + batch queue.
//
// The engines run with max_batch=1 / max_delay_us=0 so the baseline
// pays no artificial batching delay — the comparison is fast path vs
// fast path. DCRNN uses horizon T'=3 (nowcasting), the regime streaming
// targets; history is the paper's T=12.
//
// Fleet phase: many sessions of one model ticking in lock-step — a
// sensor fleet with one forecast per member per tick. Per (model, B in
// {64, 256}) the same feed runs twice on a district-sized N=24 subgraph
// (the cross-session batching regime: fleets of many SMALL per-model
// sessions, where a B=1 forward is dispatch- and packing-dominated; a
// single metro-scale session already saturates a core on its own and
// gains little from batching):
//
//  * Sequential: per tick, B x Append then B x Forecast — one engine
//    forward per session.
//  * Batched: per tick, one AppendMany (one batched cell step for the
//    whole warm fleet) then one ForecastBatch (one (B, ...) forward).
//
// The metric is session-ticks/s (sessions x ticks / wall), reported
// overall and split into the ingest (Append) and forecast halves. The
// batched DCRNN fleet amortizes the per-call overhead of B tiny
// recurrent forwards into one batched GEMM per tick, which is where
// cross-session batching pays.
//
// The batched tick additionally runs a forked legacy pass — the same
// loop with the GEMM fast paths and PrepackCache lookups disabled
// process-wide (the pre-plan serving kernel) — so the report attributes
// the inference plan's share of the fleet tick explicitly
// (`plan_speedup`, `packing_share`). District-sized fleet GEMMs are
// packing- and dispatch-dominated, which is where the plan pays most.
//
// --check-floor=R exits non-zero if the warm-session p50 per-forecast
// latency is not at least R x better than full-window resubmission.
// --check-batch-floor=R does the same for the batched-vs-sequential
// fleet throughput ratio at DCRNN B=64, and --check-prepack-floor=R
// for the batched fleet tick's plan-vs-legacy ratio at DCRNN B=64.
//
// DYHSL_PROFILE=tiny|quick|full scales tick counts only; model and
// network sizes are fixed so numbers are comparable across profiles.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/serve/router.h"
#include "src/serve/session.h"
#include "src/tensor/gemm.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"
#include "src/train/model_zoo.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kNodes = 1024;
constexpr int64_t kHistory = 12;
constexpr int64_t kHorizon = 3;
constexpr int64_t kHidden = 16;
constexpr int64_t kFeatures = 3;
/// Fleet phase: district-sized subgraph (a corridor of ~two dozen
/// sensors). Cross-session batching targets fleets of many small
/// per-model sessions; one metro-scale session saturates a core by
/// itself, so its fleet ratio is bounded by memory bandwidth instead of
/// the per-call overheads batching removes.
constexpr int64_t kFleetNodes = 24;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(values.size() - 1));
  return values[idx];
}

struct PhaseResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double ticks_per_s = 0.0;
  int64_t bytes_per_tick = 0;
};

// Simulated raw readings for one tick (client side of both loops).
void FillRawFrame(const train::ForecastTask& task, Rng* rng, float* out) {
  for (int64_t i = 0; i < task.num_nodes; ++i) {
    out[i] = task.scaler_mean + task.scaler_std * rng->Gaussian();
  }
}

// Client-side window maintenance for the resubmission baseline: shift
// one frame out, derive the MakeInput features of the new tick into the
// last row. This is work the baseline client cannot avoid — the request
// needs the materialized (T, N, F) window.
void SlideWindow(const train::ForecastTask& task, int64_t tick,
                 const float* raw, T::Tensor* window) {
  float* data = window->data();
  const int64_t frame = task.num_nodes * kFeatures;
  std::memmove(data, data + frame,
               static_cast<size_t>((kHistory - 1) * frame) * sizeof(float));
  const int64_t spd = task.steps_per_day;
  const float tod = static_cast<float>(tick % spd) / static_cast<float>(spd);
  const float dow = static_cast<float>((tick / spd) % 7) / 7.0f;
  float* last = data + (kHistory - 1) * frame;
  for (int64_t i = 0; i < task.num_nodes; ++i) {
    last[i * kFeatures + 0] =
        (raw[i] - task.scaler_mean) / task.scaler_std;
    last[i * kFeatures + 1] = tod;
    last[i * kFeatures + 2] = dow;
  }
}

// Full-window resubmission: one Submit per tick, latency is window
// update + submit + response.
bool RunResubmit(serve::ForecastRouter* router, const std::string& model,
                 const train::ForecastTask& task, int ticks, uint64_t seed,
                 PhaseResult* result) {
  Rng rng(seed);
  std::vector<float> raw(static_cast<size_t>(task.num_nodes));
  T::Tensor window({kHistory, task.num_nodes, kFeatures});
  window.Fill(0.0f);
  for (int64_t t = 0; t < kHistory; ++t) {
    FillRawFrame(task, &rng, raw.data());
    SlideWindow(task, t, raw.data(), &window);
  }
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(ticks));
  Clock::time_point start = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    Clock::time_point sent = Clock::now();
    FillRawFrame(task, &rng, raw.data());
    SlideWindow(task, kHistory + t, raw.data(), &window);
    serve::ForecastResponse response =
        router->Submit(serve::RouterRequest{model, window.Clone()}).get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "resubmit error: %s\n",
                   response.status.ToString().c_str());
      return false;
    }
    latencies.push_back(MsSince(sent));
  }
  const double wall_ms = MsSince(start);
  result->p50_ms = Percentile(latencies, 50.0);
  result->p99_ms = Percentile(latencies, 99.0);
  result->ticks_per_s =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(ticks) / wall_ms : 0.0;
  result->bytes_per_tick =
      kHistory * task.num_nodes * kFeatures * static_cast<int64_t>(sizeof(float));
  return true;
}

// Streamed session: one Append + one Forecast per tick; latency covers
// both (the full per-tick serving cost).
bool RunSession(serve::SessionManager* manager, const std::string& id,
                const train::ForecastTask& task, int64_t first_tick,
                int ticks, uint64_t seed, PhaseResult* result) {
  Rng rng(seed);
  T::Tensor raw({task.num_nodes});
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(ticks));
  Clock::time_point start = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    Clock::time_point sent = Clock::now();
    FillRawFrame(task, &rng, raw.data());
    Status appended = manager->Append(id, first_tick + t, raw);
    if (!appended.ok()) {
      std::fprintf(stderr, "append error: %s\n", appended.ToString().c_str());
      return false;
    }
    serve::ForecastResponse response = manager->Forecast(id);
    if (!response.status.ok()) {
      std::fprintf(stderr, "session error: %s\n",
                   response.status.ToString().c_str());
      return false;
    }
    latencies.push_back(MsSince(sent));
  }
  const double wall_ms = MsSince(start);
  result->p50_ms = Percentile(latencies, 50.0);
  result->p99_ms = Percentile(latencies, 99.0);
  result->ticks_per_s =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(ticks) / wall_ms : 0.0;
  result->bytes_per_tick =
      task.num_nodes * static_cast<int64_t>(sizeof(float));
  return true;
}

struct FleetResult {
  int sessions = 0;
  double sequential_sticks_per_s = 0.0;
  double batched_sticks_per_s = 0.0;
  double batched_legacy_sticks_per_s = 0.0;  // fast paths + prepack off
  double speedup = 0.0;
  double ingest_speedup = 0.0;    // B x Append vs one AppendMany
  double forecast_speedup = 0.0;  // B x Forecast vs one ForecastBatch
  double plan_speedup = 0.0;      // batched tick: legacy / plan wall time
  double packing_share = 0.0;     // (legacy - plan) / legacy
};

// RAII fork into the pre-plan serving kernel: GEMM fast paths and
// PrepackCache lookups off process-wide, restored on scope exit. Engine
// workers consult both switches per call, so the fork applies to the
// whole serving stack without touching engine state.
class LegacyKernelScope {
 public:
  LegacyKernelScope()
      : prev_fast_(T::SetGemmFastPaths(false)),
        prev_lookups_(T::SetPrepackLookupsEnabled(false)) {}
  ~LegacyKernelScope() {
    T::SetPrepackLookupsEnabled(prev_lookups_);
    T::SetGemmFastPaths(prev_fast_);
  }

 private:
  bool prev_fast_;
  bool prev_lookups_;
};

// One (model, fleet-size) comparison: a fresh fleet of B lock-step
// sessions, primed together, then the same tick stream measured first
// sequentially (B Appends + B Forecasts per tick) and then batched
// (one AppendMany + one ForecastBatch per tick).
bool RunFleet(serve::ForecastRouter* router, const std::string& model,
              bool warm, const train::ForecastTask& task, int sessions,
              int ticks, uint64_t seed, FleetResult* result) {
  serve::SessionManager manager(router);
  serve::SessionOptions options;
  options.model = model;
  options.warm_state = warm;
  std::vector<std::string> ids;
  ids.reserve(static_cast<size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    ids.push_back("fleet-" + std::to_string(i));
    if (!manager.Open(ids.back(), options).ok()) return false;
  }

  Rng rng(seed);
  T::Tensor raw({task.num_nodes});
  // The whole fleet reads the same sensors: every member gets the same
  // frame, which Tensor shares by storage — no per-session copies.
  std::vector<T::Tensor> frames(static_cast<size_t>(sessions), raw);
  int64_t tick = 0;
  auto barrier_ok = [&](const std::vector<Status>& statuses) {
    for (const Status& s : statuses) {
      if (!s.ok()) {
        std::fprintf(stderr, "fleet append error: %s\n", s.ToString().c_str());
        return false;
      }
    }
    return true;
  };
  // Prime: fill every ring, warm every carry, touch both compute paths.
  for (; tick < kHistory; ++tick) {
    FillRawFrame(task, &rng, raw.data());
    if (!barrier_ok(manager.AppendMany(ids, tick, frames))) return false;
  }
  for (const serve::ForecastResponse& r : manager.ForecastBatch(ids)) {
    if (!r.status.ok()) return false;
  }
  if (!manager.Forecast(ids[0]).status.ok()) return false;

  result->sessions = sessions;
  // Sequential: one engine forward per session per tick. Ingest and
  // forecast halves are timed separately so the report shows where the
  // batched tick earns its ratio.
  double seq_ingest_ms = 0.0, seq_forecast_ms = 0.0;
  for (int t = 0; t < ticks; ++t, ++tick) {
    FillRawFrame(task, &rng, raw.data());
    Clock::time_point start = Clock::now();
    for (const std::string& id : ids) {
      if (!manager.Append(id, tick, raw).ok()) return false;
    }
    seq_ingest_ms += MsSince(start);
    start = Clock::now();
    for (const std::string& id : ids) {
      if (!manager.Forecast(id).status.ok()) return false;
    }
    seq_forecast_ms += MsSince(start);
  }
  const double seq_ms = seq_ingest_ms + seq_forecast_ms;
  // Batched: one tick barrier, one batched forward per tick.
  double bat_ingest_ms = 0.0, bat_forecast_ms = 0.0;
  for (int t = 0; t < ticks; ++t, ++tick) {
    FillRawFrame(task, &rng, raw.data());
    Clock::time_point start = Clock::now();
    if (!barrier_ok(manager.AppendMany(ids, tick, frames))) return false;
    bat_ingest_ms += MsSince(start);
    start = Clock::now();
    for (const serve::ForecastResponse& r : manager.ForecastBatch(ids)) {
      if (!r.status.ok()) {
        std::fprintf(stderr, "fleet forecast error: %s\n",
                     r.status.ToString().c_str());
        return false;
      }
    }
    bat_forecast_ms += MsSince(start);
  }
  const double bat_ms = bat_ingest_ms + bat_forecast_ms;

  // Plan fork: the same batched tick loop under the pre-plan kernel
  // (fast paths and prepack lookups disabled process-wide) and once more
  // under the plan, interleaved so machine drift cannot bias one side.
  // Each burst is timed whole; best-of per mode.
  double legacy_ms = 1e30, plan_ms = bat_ms;
  for (int round = 0; round < 2; ++round) {
    {
      LegacyKernelScope legacy;
      Clock::time_point start = Clock::now();
      for (int t = 0; t < ticks; ++t, ++tick) {
        FillRawFrame(task, &rng, raw.data());
        if (!barrier_ok(manager.AppendMany(ids, tick, frames))) return false;
        for (const serve::ForecastResponse& r : manager.ForecastBatch(ids)) {
          if (!r.status.ok()) return false;
        }
      }
      legacy_ms = std::min(legacy_ms, MsSince(start));
    }
    Clock::time_point start = Clock::now();
    for (int t = 0; t < ticks; ++t, ++tick) {
      FillRawFrame(task, &rng, raw.data());
      if (!barrier_ok(manager.AppendMany(ids, tick, frames))) return false;
      for (const serve::ForecastResponse& r : manager.ForecastBatch(ids)) {
        if (!r.status.ok()) return false;
      }
    }
    plan_ms = std::min(plan_ms, MsSince(start));
  }

  const double session_ticks = static_cast<double>(sessions) * ticks;
  result->sequential_sticks_per_s =
      seq_ms > 0.0 ? 1000.0 * session_ticks / seq_ms : 0.0;
  result->batched_sticks_per_s =
      bat_ms > 0.0 ? 1000.0 * session_ticks / bat_ms : 0.0;
  result->batched_legacy_sticks_per_s =
      legacy_ms > 0.0 ? 1000.0 * session_ticks / legacy_ms : 0.0;
  result->speedup = seq_ms > 0.0 && bat_ms > 0.0 ? seq_ms / bat_ms : 0.0;
  result->ingest_speedup =
      bat_ingest_ms > 0.0 ? seq_ingest_ms / bat_ingest_ms : 0.0;
  result->forecast_speedup =
      bat_forecast_ms > 0.0 ? seq_forecast_ms / bat_forecast_ms : 0.0;
  result->plan_speedup = plan_ms > 0.0 ? legacy_ms / plan_ms : 0.0;
  result->packing_share =
      legacy_ms > 0.0 ? (legacy_ms - plan_ms) / legacy_ms : 0.0;
  return true;
}

// Streams kHistory warm-up ticks so the session ring is full and every
// arena / cache is hot before measurement.
bool PrimeSession(serve::SessionManager* manager, const std::string& id,
                  const train::ForecastTask& task, uint64_t seed) {
  Rng rng(seed);
  T::Tensor raw({task.num_nodes});
  for (int64_t t = 0; t < kHistory; ++t) {
    FillRawFrame(task, &rng, raw.data());
    if (!manager->Append(id, t, raw).ok()) return false;
  }
  return manager->Forecast(id).status.ok();
}

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  double check_floor = 0.0;
  double check_batch_floor = 0.0;
  double check_prepack_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--check-batch-floor=", 20) == 0) {
      check_batch_floor = std::atof(argv[i] + 20);
    } else if (std::strncmp(argv[i], "--check-prepack-floor=", 22) == 0) {
      check_prepack_floor = std::atof(argv[i] + 22);
    }
  }
  ConfigureParallelism();
  RunProfile profile = GetRunProfile();
  const int ticks = profile == RunProfile::kTiny
                        ? 30
                        : (profile == RunProfile::kQuick ? 100 : 300);
  // Fleet ticks stay small: one sequential 256-session tick costs ~512
  // engine forwards, and the comparison stabilizes within a few ticks.
  const int fleet_ticks = profile == RunProfile::kTiny
                              ? 4
                              : (profile == RunProfile::kQuick ? 10 : 20);

  train::ForecastTask task =
      train::RingForecastTask(kNodes, kHistory, kHorizon);
  train::ZooConfig zoo;
  zoo.hidden_dim = kHidden;
  // Fast path vs fast path: no batching delay for the baseline.
  serve::EngineOptions options;
  options.max_batch = 1;
  options.max_delay_us = 0;

  auto created = serve::ForecastRouter::Create();
  if (!created.ok()) return 1;
  auto router = std::move(created).ValueOrDie();
  if (!router->AddModel("dcrnn", task, serve::ZooFactory("DCRNN", zoo), "",
                        options)
           .ok() ||
      !router->AddModel("stgcn", task, serve::ZooFactory("STGCN", zoo), "",
                        options)
           .ok()) {
    std::fprintf(stderr, "fleet bring-up failed\n");
    return 1;
  }
  serve::SessionManager manager(router.get());
  serve::SessionOptions warm;
  warm.model = "dcrnn";
  warm.warm_state = true;
  serve::SessionOptions windowed;
  windowed.model = "stgcn";
  if (!manager.Open("warm", warm).ok() ||
      !manager.Open("windowed", windowed).ok()) {
    std::fprintf(stderr, "session open failed\n");
    return 1;
  }

  std::printf(
      "=== bench_stream (N=%lld, T=%lld, T'=%lld, DCRNN/STGCN d=%lld, "
      "%d ticks) ===\n",
      static_cast<long long>(kNodes), static_cast<long long>(kHistory),
      static_cast<long long>(kHorizon), static_cast<long long>(kHidden),
      ticks);

  // Warm-up: fill rings, touch every arena and cache on both paths.
  PhaseResult scratch;
  if (!PrimeSession(&manager, "warm", task, 11) ||
      !PrimeSession(&manager, "windowed", task, 12) ||
      !RunResubmit(router.get(), "dcrnn", task, std::max(4, ticks / 8), 13,
                   &scratch) ||
      !RunResubmit(router.get(), "stgcn", task, std::max(4, ticks / 8), 14,
                   &scratch)) {
    std::fprintf(stderr, "warm-up failed\n");
    return 1;
  }

  PhaseResult dcrnn_resubmit, dcrnn_session, stgcn_resubmit, stgcn_session;
  if (!RunResubmit(router.get(), "dcrnn", task, ticks, 21, &dcrnn_resubmit) ||
      !RunSession(&manager, "warm", task, kHistory, ticks, 22,
                  &dcrnn_session) ||
      !RunResubmit(router.get(), "stgcn", task, ticks, 23, &stgcn_resubmit) ||
      !RunSession(&manager, "windowed", task, kHistory, ticks, 24,
                  &stgcn_session)) {
    return 1;
  }

  auto print_row = [](const char* name, const PhaseResult& r) {
    std::printf("%-22s p50 %8.3f ms   p99 %8.3f ms   %8.1f ticks/s   "
                "%7lld B/tick\n",
                name, r.p50_ms, r.p99_ms, r.ticks_per_s,
                static_cast<long long>(r.bytes_per_tick));
  };
  print_row("DCRNN resubmit", dcrnn_resubmit);
  print_row("DCRNN warm session", dcrnn_session);
  print_row("STGCN resubmit", stgcn_resubmit);
  print_row("STGCN windowed session", stgcn_session);

  // ------------------------------------------------------- Fleet phase --
  train::ForecastTask fleet_task =
      train::RingForecastTask(kFleetNodes, kHistory, kHorizon);
  auto fleet_created = serve::ForecastRouter::Create();
  if (!fleet_created.ok()) return 1;
  auto fleet_router = std::move(fleet_created).ValueOrDie();
  if (!fleet_router
           ->AddModel("dcrnn", fleet_task, serve::ZooFactory("DCRNN", zoo),
                      "", options)
           .ok() ||
      !fleet_router
           ->AddModel("stgcn", fleet_task, serve::ZooFactory("STGCN", zoo),
                      "", options)
           .ok()) {
    std::fprintf(stderr, "fleet bring-up failed\n");
    return 1;
  }
  std::printf(
      "--- fleet phase (N=%lld, %d ticks, batched vs sequential) ---\n",
      static_cast<long long>(kFleetNodes), fleet_ticks);
  struct FleetRun {
    const char* key;
    const char* model;
    bool warm;
    int sessions;
    FleetResult result;
  };
  FleetRun fleet_runs[] = {
      {"fleet_dcrnn_64", "dcrnn", true, 64, {}},
      {"fleet_dcrnn_256", "dcrnn", true, 256, {}},
      {"fleet_stgcn_64", "stgcn", false, 64, {}},
      {"fleet_stgcn_256", "stgcn", false, 256, {}},
  };
  uint64_t fleet_seed = 31;
  for (FleetRun& run : fleet_runs) {
    if (!RunFleet(fleet_router.get(), run.model, run.warm, fleet_task,
                  run.sessions, fleet_ticks, fleet_seed++, &run.result)) {
      std::fprintf(stderr, "fleet run %s failed\n", run.key);
      return 1;
    }
    std::printf("%-22s B=%3d   seq %9.1f st/s   batched %9.1f st/s   "
                "%5.2fx  (ingest %.2fx, forecast %.2fx)\n",
                run.key, run.sessions,
                run.result.sequential_sticks_per_s,
                run.result.batched_sticks_per_s, run.result.speedup,
                run.result.ingest_speedup, run.result.forecast_speedup);
    std::printf("%-22s         plan fork: legacy %9.1f st/s -> "
                "%5.2fx  (packing share %.1f%%)\n",
                "", run.result.batched_legacy_sticks_per_s,
                run.result.plan_speedup, 100.0 * run.result.packing_share);
  }
  const double batch_speedup_64 = fleet_runs[0].result.speedup;
  const double fleet_prepack_speedup_64 = fleet_runs[0].result.plan_speedup;

  const double warm_speedup = dcrnn_session.p50_ms > 0.0
                                  ? dcrnn_resubmit.p50_ms / dcrnn_session.p50_ms
                                  : 0.0;
  const double windowed_speedup =
      stgcn_session.p50_ms > 0.0
          ? stgcn_resubmit.p50_ms / stgcn_session.p50_ms
          : 0.0;
  std::printf("warm-session per-forecast speedup:     %.2fx\n", warm_speedup);
  std::printf("windowed-session per-forecast speedup: %.2fx\n",
              windowed_speedup);

  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_stream.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto phase_json = [out](const char* name, const PhaseResult& r,
                          bool trailing_comma) {
    std::fprintf(out,
                 "    \"%s\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"ticks_per_s\": %.2f, \"bytes_per_tick\": %lld}%s\n",
                 name, r.p50_ms, r.p99_ms, r.ticks_per_s,
                 static_cast<long long>(r.bytes_per_tick),
                 trailing_comma ? "," : "");
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"nodes\": %lld,\n", static_cast<long long>(kNodes));
  std::fprintf(out, "  \"history\": %lld,\n",
               static_cast<long long>(kHistory));
  std::fprintf(out, "  \"horizon\": %lld,\n",
               static_cast<long long>(kHorizon));
  std::fprintf(out, "  \"hidden_dim\": %lld,\n",
               static_cast<long long>(kHidden));
  std::fprintf(out, "  \"ticks\": %d,\n", ticks);
  std::fprintf(out, "  \"phases\": {\n");
  phase_json("dcrnn_resubmit", dcrnn_resubmit, true);
  phase_json("dcrnn_warm_session", dcrnn_session, true);
  phase_json("stgcn_resubmit", stgcn_resubmit, true);
  phase_json("stgcn_windowed_session", stgcn_session, false);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fleet\": {\n");
  std::fprintf(out, "    \"nodes\": %lld,\n",
               static_cast<long long>(kFleetNodes));
  std::fprintf(out, "    \"ticks\": %d,\n", fleet_ticks);
  for (size_t i = 0; i < 4; ++i) {
    const FleetRun& run = fleet_runs[i];
    std::fprintf(out,
                 "    \"%s\": {\"sessions\": %d, "
                 "\"sequential_session_ticks_per_s\": %.2f, "
                 "\"batched_session_ticks_per_s\": %.2f, "
                 "\"batched_legacy_session_ticks_per_s\": %.2f, "
                 "\"speedup\": %.4f, \"ingest_speedup\": %.4f, "
                 "\"forecast_speedup\": %.4f, \"plan_speedup\": %.4f, "
                 "\"packing_share\": %.4f}%s\n",
                 run.key, run.result.sessions,
                 run.result.sequential_sticks_per_s,
                 run.result.batched_sticks_per_s,
                 run.result.batched_legacy_sticks_per_s, run.result.speedup,
                 run.result.ingest_speedup, run.result.forecast_speedup,
                 run.result.plan_speedup, run.result.packing_share,
                 i + 1 < 4 ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"warm_session_speedup\": %.4f,\n", warm_speedup);
  std::fprintf(out, "  \"windowed_session_speedup\": %.4f,\n",
               windowed_speedup);
  std::fprintf(out, "  \"batch_speedup_64\": %.4f,\n", batch_speedup_64);
  std::fprintf(out, "  \"fleet_prepack_speedup_64\": %.4f\n",
               fleet_prepack_speedup_64);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0 && warm_speedup < check_floor) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: warm-session speedup %.2fx < required "
                 "%.2fx\n",
                 warm_speedup, check_floor);
    return 1;
  }
  if (check_batch_floor > 0.0 && batch_speedup_64 < check_batch_floor) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: batched fleet speedup %.2fx at B=64 < "
                 "required %.2fx\n",
                 batch_speedup_64, check_batch_floor);
    return 1;
  }
  if (check_prepack_floor > 0.0 &&
      fleet_prepack_speedup_64 < check_prepack_floor) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: fleet-tick plan speedup %.2fx at B=64 < "
                 "required %.2fx\n",
                 fleet_prepack_speedup_64, check_prepack_floor);
    return 1;
  }
  return 0;
}
