// Streaming-session benchmark: per-forecast latency and sustained tick
// rate of stateful sessions vs full-window resubmission.
//
//   $ ./build/bench_stream                    # prints a table
//   $ ./build/bench_stream --check-floor=3    # CI guard (see below)
//   $ DYHSL_BENCH_OUT=BENCH_stream.json ./build/bench_stream
//
// Scenario: an N=1024 sensor network ticking once per simulated 5-minute
// bin, with a forecast wanted after every tick.
//
//  * Baseline ("resubmit"): the client keeps the (T, N, F) window,
//    shifts it by one frame per tick, and submits the full window
//    through ForecastRouter::Submit — the batch path re-reads all
//    T x N x F floats and re-runs the model end to end every tick.
//  * Streamed ("session"): a warm SessionManager session. Append hands
//    the server N raw floats; the session advances the carried DCRNN
//    encoder one cell step and Forecast runs only the T'-step decoder
//    against the server-side ring. Per tick that is 1 + T' cell steps
//    instead of T + T', plus none of the window materialization.
//  * A stateless STGCN pair (windowed session vs resubmission) isolates
//    the transport/queue savings alone — no recurrent carry, the model
//    work is identical, so the gap is window assembly + batch queue.
//
// The engines run with max_batch=1 / max_delay_us=0 so the baseline
// pays no artificial batching delay — the comparison is fast path vs
// fast path. DCRNN uses horizon T'=3 (nowcasting), the regime streaming
// targets; history is the paper's T=12.
//
// --check-floor=R exits non-zero if the warm-session p50 per-forecast
// latency is not at least R x better than full-window resubmission.
//
// DYHSL_PROFILE=tiny|quick|full scales tick counts only; model and
// network sizes are fixed so numbers are comparable across profiles.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/core/rng.h"
#include "src/serve/router.h"
#include "src/serve/session.h"
#include "src/tensor/tensor.h"
#include "src/train/model_zoo.h"

namespace dyhsl::bench {
namespace {

namespace T = ::dyhsl::tensor;
using Clock = std::chrono::steady_clock;

constexpr int64_t kNodes = 1024;
constexpr int64_t kHistory = 12;
constexpr int64_t kHorizon = 3;
constexpr int64_t kHidden = 16;
constexpr int64_t kFeatures = 3;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double Percentile(std::vector<double> values, double pct) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(pct / 100.0 *
                                   static_cast<double>(values.size() - 1));
  return values[idx];
}

struct PhaseResult {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double ticks_per_s = 0.0;
  int64_t bytes_per_tick = 0;
};

// Simulated raw readings for one tick (client side of both loops).
void FillRawFrame(const train::ForecastTask& task, Rng* rng, float* out) {
  for (int64_t i = 0; i < task.num_nodes; ++i) {
    out[i] = task.scaler_mean + task.scaler_std * rng->Gaussian();
  }
}

// Client-side window maintenance for the resubmission baseline: shift
// one frame out, derive the MakeInput features of the new tick into the
// last row. This is work the baseline client cannot avoid — the request
// needs the materialized (T, N, F) window.
void SlideWindow(const train::ForecastTask& task, int64_t tick,
                 const float* raw, T::Tensor* window) {
  float* data = window->data();
  const int64_t frame = task.num_nodes * kFeatures;
  std::memmove(data, data + frame,
               static_cast<size_t>((kHistory - 1) * frame) * sizeof(float));
  const int64_t spd = task.steps_per_day;
  const float tod = static_cast<float>(tick % spd) / static_cast<float>(spd);
  const float dow = static_cast<float>((tick / spd) % 7) / 7.0f;
  float* last = data + (kHistory - 1) * frame;
  for (int64_t i = 0; i < task.num_nodes; ++i) {
    last[i * kFeatures + 0] =
        (raw[i] - task.scaler_mean) / task.scaler_std;
    last[i * kFeatures + 1] = tod;
    last[i * kFeatures + 2] = dow;
  }
}

// Full-window resubmission: one Submit per tick, latency is window
// update + submit + response.
bool RunResubmit(serve::ForecastRouter* router, const std::string& model,
                 const train::ForecastTask& task, int ticks, uint64_t seed,
                 PhaseResult* result) {
  Rng rng(seed);
  std::vector<float> raw(static_cast<size_t>(task.num_nodes));
  T::Tensor window({kHistory, task.num_nodes, kFeatures});
  window.Fill(0.0f);
  for (int64_t t = 0; t < kHistory; ++t) {
    FillRawFrame(task, &rng, raw.data());
    SlideWindow(task, t, raw.data(), &window);
  }
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(ticks));
  Clock::time_point start = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    Clock::time_point sent = Clock::now();
    FillRawFrame(task, &rng, raw.data());
    SlideWindow(task, kHistory + t, raw.data(), &window);
    serve::ForecastResponse response =
        router->Submit(serve::RouterRequest{model, window.Clone()}).get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "resubmit error: %s\n",
                   response.status.ToString().c_str());
      return false;
    }
    latencies.push_back(MsSince(sent));
  }
  const double wall_ms = MsSince(start);
  result->p50_ms = Percentile(latencies, 50.0);
  result->p99_ms = Percentile(latencies, 99.0);
  result->ticks_per_s =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(ticks) / wall_ms : 0.0;
  result->bytes_per_tick =
      kHistory * task.num_nodes * kFeatures * static_cast<int64_t>(sizeof(float));
  return true;
}

// Streamed session: one Append + one Forecast per tick; latency covers
// both (the full per-tick serving cost).
bool RunSession(serve::SessionManager* manager, const std::string& id,
                const train::ForecastTask& task, int64_t first_tick,
                int ticks, uint64_t seed, PhaseResult* result) {
  Rng rng(seed);
  T::Tensor raw({task.num_nodes});
  std::vector<double> latencies;
  latencies.reserve(static_cast<size_t>(ticks));
  Clock::time_point start = Clock::now();
  for (int t = 0; t < ticks; ++t) {
    Clock::time_point sent = Clock::now();
    FillRawFrame(task, &rng, raw.data());
    Status appended = manager->Append(id, first_tick + t, raw);
    if (!appended.ok()) {
      std::fprintf(stderr, "append error: %s\n", appended.ToString().c_str());
      return false;
    }
    serve::ForecastResponse response = manager->Forecast(id);
    if (!response.status.ok()) {
      std::fprintf(stderr, "session error: %s\n",
                   response.status.ToString().c_str());
      return false;
    }
    latencies.push_back(MsSince(sent));
  }
  const double wall_ms = MsSince(start);
  result->p50_ms = Percentile(latencies, 50.0);
  result->p99_ms = Percentile(latencies, 99.0);
  result->ticks_per_s =
      wall_ms > 0.0 ? 1000.0 * static_cast<double>(ticks) / wall_ms : 0.0;
  result->bytes_per_tick =
      task.num_nodes * static_cast<int64_t>(sizeof(float));
  return true;
}

// Streams kHistory warm-up ticks so the session ring is full and every
// arena / cache is hot before measurement.
bool PrimeSession(serve::SessionManager* manager, const std::string& id,
                  const train::ForecastTask& task, uint64_t seed) {
  Rng rng(seed);
  T::Tensor raw({task.num_nodes});
  for (int64_t t = 0; t < kHistory; ++t) {
    FillRawFrame(task, &rng, raw.data());
    if (!manager->Append(id, t, raw).ok()) return false;
  }
  return manager->Forecast(id).status.ok();
}

}  // namespace
}  // namespace dyhsl::bench

int main(int argc, char** argv) {
  using namespace dyhsl;
  using namespace dyhsl::bench;
  double check_floor = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--check-floor=", 14) == 0) {
      check_floor = std::atof(argv[i] + 14);
    }
  }
  ConfigureParallelism();
  RunProfile profile = GetRunProfile();
  const int ticks = profile == RunProfile::kTiny
                        ? 30
                        : (profile == RunProfile::kQuick ? 100 : 300);

  train::ForecastTask task =
      train::RingForecastTask(kNodes, kHistory, kHorizon);
  train::ZooConfig zoo;
  zoo.hidden_dim = kHidden;
  // Fast path vs fast path: no batching delay for the baseline.
  serve::EngineOptions options;
  options.max_batch = 1;
  options.max_delay_us = 0;

  auto created = serve::ForecastRouter::Create();
  if (!created.ok()) return 1;
  auto router = std::move(created).ValueOrDie();
  if (!router->AddModel("dcrnn", task, serve::ZooFactory("DCRNN", zoo), "",
                        options)
           .ok() ||
      !router->AddModel("stgcn", task, serve::ZooFactory("STGCN", zoo), "",
                        options)
           .ok()) {
    std::fprintf(stderr, "fleet bring-up failed\n");
    return 1;
  }
  serve::SessionManager manager(router.get());
  serve::SessionOptions warm;
  warm.model = "dcrnn";
  warm.warm_state = true;
  serve::SessionOptions windowed;
  windowed.model = "stgcn";
  if (!manager.Open("warm", warm).ok() ||
      !manager.Open("windowed", windowed).ok()) {
    std::fprintf(stderr, "session open failed\n");
    return 1;
  }

  std::printf(
      "=== bench_stream (N=%lld, T=%lld, T'=%lld, DCRNN/STGCN d=%lld, "
      "%d ticks) ===\n",
      static_cast<long long>(kNodes), static_cast<long long>(kHistory),
      static_cast<long long>(kHorizon), static_cast<long long>(kHidden),
      ticks);

  // Warm-up: fill rings, touch every arena and cache on both paths.
  PhaseResult scratch;
  if (!PrimeSession(&manager, "warm", task, 11) ||
      !PrimeSession(&manager, "windowed", task, 12) ||
      !RunResubmit(router.get(), "dcrnn", task, std::max(4, ticks / 8), 13,
                   &scratch) ||
      !RunResubmit(router.get(), "stgcn", task, std::max(4, ticks / 8), 14,
                   &scratch)) {
    std::fprintf(stderr, "warm-up failed\n");
    return 1;
  }

  PhaseResult dcrnn_resubmit, dcrnn_session, stgcn_resubmit, stgcn_session;
  if (!RunResubmit(router.get(), "dcrnn", task, ticks, 21, &dcrnn_resubmit) ||
      !RunSession(&manager, "warm", task, kHistory, ticks, 22,
                  &dcrnn_session) ||
      !RunResubmit(router.get(), "stgcn", task, ticks, 23, &stgcn_resubmit) ||
      !RunSession(&manager, "windowed", task, kHistory, ticks, 24,
                  &stgcn_session)) {
    return 1;
  }

  auto print_row = [](const char* name, const PhaseResult& r) {
    std::printf("%-22s p50 %8.3f ms   p99 %8.3f ms   %8.1f ticks/s   "
                "%7lld B/tick\n",
                name, r.p50_ms, r.p99_ms, r.ticks_per_s,
                static_cast<long long>(r.bytes_per_tick));
  };
  print_row("DCRNN resubmit", dcrnn_resubmit);
  print_row("DCRNN warm session", dcrnn_session);
  print_row("STGCN resubmit", stgcn_resubmit);
  print_row("STGCN windowed session", stgcn_session);

  const double warm_speedup = dcrnn_session.p50_ms > 0.0
                                  ? dcrnn_resubmit.p50_ms / dcrnn_session.p50_ms
                                  : 0.0;
  const double windowed_speedup =
      stgcn_session.p50_ms > 0.0
          ? stgcn_resubmit.p50_ms / stgcn_session.p50_ms
          : 0.0;
  std::printf("warm-session per-forecast speedup:     %.2fx\n", warm_speedup);
  std::printf("windowed-session per-forecast speedup: %.2fx\n",
              windowed_speedup);

  const char* out_env = std::getenv("DYHSL_BENCH_OUT");
  std::string out_path = out_env != nullptr ? out_env : "BENCH_stream.json";
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  auto phase_json = [out](const char* name, const PhaseResult& r,
                          bool trailing_comma) {
    std::fprintf(out,
                 "    \"%s\": {\"p50_ms\": %.4f, \"p99_ms\": %.4f, "
                 "\"ticks_per_s\": %.2f, \"bytes_per_tick\": %lld}%s\n",
                 name, r.p50_ms, r.p99_ms, r.ticks_per_s,
                 static_cast<long long>(r.bytes_per_tick),
                 trailing_comma ? "," : "");
  };
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"profile\": \"%s\",\n", RunProfileName(profile));
  std::fprintf(out, "  \"nodes\": %lld,\n", static_cast<long long>(kNodes));
  std::fprintf(out, "  \"history\": %lld,\n",
               static_cast<long long>(kHistory));
  std::fprintf(out, "  \"horizon\": %lld,\n",
               static_cast<long long>(kHorizon));
  std::fprintf(out, "  \"hidden_dim\": %lld,\n",
               static_cast<long long>(kHidden));
  std::fprintf(out, "  \"ticks\": %d,\n", ticks);
  std::fprintf(out, "  \"phases\": {\n");
  phase_json("dcrnn_resubmit", dcrnn_resubmit, true);
  phase_json("dcrnn_warm_session", dcrnn_session, true);
  phase_json("stgcn_resubmit", stgcn_resubmit, true);
  phase_json("stgcn_windowed_session", stgcn_session, false);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"warm_session_speedup\": %.4f,\n", warm_speedup);
  std::fprintf(out, "  \"windowed_session_speedup\": %.4f\n",
               windowed_speedup);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (check_floor > 0.0 && warm_speedup < check_floor) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: warm-session speedup %.2fx < required "
                 "%.2fx\n",
                 warm_speedup, check_floor);
    return 1;
  }
  return 0;
}
