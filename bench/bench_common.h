// Shared plumbing for the experiment benches (bench_table*/bench_fig*):
// profile-scaled dataset construction, train-and-evaluate drivers, and
// aligned table printing with the paper's reference numbers.

#ifndef DYHSL_BENCH_BENCH_COMMON_H_
#define DYHSL_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/parallel.h"
#include "src/core/profile.h"
#include "src/data/dataset.h"
#include "src/metrics/metrics.h"
#include "src/models/dyhsl.h"
#include "src/train/model_zoo.h"
#include "src/train/trainer.h"

namespace dyhsl::bench {

/// \brief Quick/tiny/full knobs resolved once per binary.
struct BenchEnv {
  RunProfile profile;
  ProfileKnobs knobs;
  train::TrainConfig train_config;
  train::ZooConfig zoo_config;

  static BenchEnv FromEnvironment() {
    ConfigureParallelism();
    BenchEnv env;
    env.profile = GetRunProfile();
    env.knobs = GetProfileKnobs(env.profile);
    env.train_config.epochs = env.knobs.train_epochs;
    env.train_config.batch_size = env.knobs.batch_size;
    env.train_config.max_batches_per_epoch = env.knobs.max_batches_per_epoch;
    env.train_config.learning_rate = 2e-3f;
    env.zoo_config.hidden_dim = env.knobs.hidden_dim;
    // Optional overrides for deeper runs without switching profile.
    if (const char* e = std::getenv("DYHSL_EPOCHS")) {
      int v = std::atoi(e);
      if (v > 0) env.train_config.epochs = v;
    }
    if (const char* e = std::getenv("DYHSL_HIDDEN")) {
      int v = std::atoi(e);
      if (v > 0) {
        env.zoo_config.hidden_dim = v;
        env.knobs.hidden_dim = v;
      }
    }
    return env;
  }
};

inline void PrintHeaderLine(const std::string& title, const BenchEnv& env) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("profile=%s  node_scale=%.2f  days=%d  epochs=%d  "
              "hidden=%d  batch=%d\n",
              RunProfileName(env.profile), env.knobs.node_scale,
              env.knobs.sim_days, env.knobs.train_epochs,
              env.knobs.hidden_dim, env.knobs.batch_size);
  std::printf("(paper reference values in brackets; shapes, not absolute "
              "numbers, are the reproduction target)\n\n");
}

/// \brief Builds the profile-scaled SynPEMS dataset by paper name
/// ("SynPEMS03" .. "SynPEMS08").
inline data::TrafficDataset MakeDataset(const std::string& name,
                                        const BenchEnv& env) {
  double s = env.knobs.node_scale;
  int64_t d = env.knobs.sim_days;
  if (name == "SynPEMS03") {
    return data::TrafficDataset::Generate(data::DatasetSpec::Pems03Like(s, d));
  }
  if (name == "SynPEMS04") {
    return data::TrafficDataset::Generate(data::DatasetSpec::Pems04Like(s, d));
  }
  if (name == "SynPEMS07") {
    return data::TrafficDataset::Generate(data::DatasetSpec::Pems07Like(s, d));
  }
  return data::TrafficDataset::Generate(data::DatasetSpec::Pems08Like(s, d));
}

/// \brief Trains a fresh neural model and returns test metrics.
struct ModelRun {
  metrics::ForecastMetrics test;
  train::TrainResult train;
  double test_seconds = 0.0;
  int64_t parameters = 0;
};

inline ModelRun RunNeural(const std::string& key,
                          const data::TrafficDataset& dataset,
                          const BenchEnv& env) {
  train::ForecastTask task = train::ForecastTask::FromDataset(dataset);
  std::unique_ptr<train::ForecastModel> model =
      train::MakeNeuralModel(key, task, env.zoo_config);
  ModelRun run;
  run.parameters = model->ParameterCount();
  run.train = train::TrainModel(model.get(), dataset, env.train_config);
  int64_t max_eval = env.profile == RunProfile::kFull ? 0 : 24;
  train::EvalResult eval = train::EvaluateModel(
      model.get(), dataset, dataset.test_range(), env.knobs.batch_size,
      max_eval);
  run.test = eval.overall;
  run.test_seconds = eval.seconds;
  return run;
}

inline metrics::ForecastMetrics RunClassical(
    const std::string& key, const data::TrafficDataset& dataset,
    const BenchEnv& env) {
  std::unique_ptr<baselines::ClassicalModel> model =
      train::MakeClassicalModel(key);
  model->Fit(dataset);
  int64_t max_windows = env.profile == RunProfile::kFull ? 0 : 300;
  return baselines::EvaluateClassical(model.get(), dataset,
                                      dataset.test_range(), max_windows);
}

/// \brief One formatted "MAE RMSE MAPE [paper]" cell.
inline std::string Cell(const metrics::ForecastMetrics& m,
                        const std::string& model_key,
                        const std::string& dataset_name) {
  char buf[128];
  train::PaperRow ref;
  if (train::PaperTable3Reference(model_key, dataset_name, &ref)) {
    std::snprintf(buf, sizeof(buf), "%6.2f %6.2f %5.1f%% [%5.1f/%5.1f/%4.1f%%]",
                  m.mae, m.rmse, m.mape, ref.mae, ref.rmse, ref.mape);
  } else {
    std::snprintf(buf, sizeof(buf), "%6.2f %6.2f %5.1f%%", m.mae, m.rmse,
                  m.mape);
  }
  return buf;
}

/// \brief Ablation benches (Tables V-VII) converge orderings better with a
/// slightly deeper schedule than the zoo sweep.
inline train::TrainConfig AblationTrainConfig(const BenchEnv& env) {
  train::TrainConfig tc = env.train_config;
  tc.epochs = std::max<int64_t>(tc.epochs, 4);
  return tc;
}

/// \brief Comma-separated model/dataset filters from the environment
/// (DYHSL_MODELS / DYHSL_DATASETS); empty = everything.
inline bool EnvListAllows(const char* env_name, const std::string& value) {
  const char* raw = std::getenv(env_name);
  if (raw == nullptr || raw[0] == '\0') return true;
  std::string list(raw);
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    if (list.substr(pos, comma - pos) == value) return true;
    pos = comma + 1;
  }
  return false;
}

}  // namespace dyhsl::bench

#endif  // DYHSL_BENCH_BENCH_COMMON_H_
