// Reproduces paper Table IV: number of parameters, training time per epoch
// and testing time of DyHSL against the heavier baselines, on SynPEMS04.
//
// The paper compares STGODE (714K params), DSTAGNN (3.58M) and DyHSL
// (256K). DSTAGNN is not implemented (attention family covered elsewhere,
// see DESIGN.md); GraphWaveNet and AGCRN stand in as the extra comparison
// points. Absolute times are hardware-bound; the ranking and the parameter
// ordering are the reproduction target.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

struct PaperScalability {
  const char* model;
  const char* params;
  double train_s;
  double test_s;
};

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine(
      "Table IV: parameters / training / testing time (SynPEMS04)", env);

  const std::vector<PaperScalability> paper = {
      {"STGODE", "714K", 92.49, 8.5},
      {"DSTAGNN", "3.58M", 190.5, 15.8},
      {"DyHSL", "256K", 104.5, 14.2},
  };
  std::printf("Paper reference (PEMS04, RTX GPU):\n");
  for (const auto& row : paper) {
    std::printf("  %-14s %8s params  %8.1f s/epoch  %6.1f s test\n",
                row.model, row.params, row.train_s, row.test_s);
  }
  std::printf("\nMeasured (CPU, profile-scaled):\n");

  data::TrafficDataset dataset = MakeDataset("SynPEMS04", env);
  std::printf("  dataset |V|=%lld steps=%lld\n\n",
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_steps()));
  std::printf("  %-14s %10s %14s %12s %10s\n", "Model", "Params",
              "Train s/epoch", "Test s", "Test MAE");
  for (const std::string& key :
       {std::string("STGODE"), std::string("GraphWaveNet"),
        std::string("AGCRN"), std::string("DyHSL")}) {
    if (!EnvListAllows("DYHSL_MODELS", key)) continue;
    ModelRun run = RunNeural(key, dataset, env);
    std::printf("  %-14s %10lld %14.2f %12.2f %10.2f\n", key.c_str(),
                static_cast<long long>(run.parameters),
                run.train.seconds_per_epoch, run.test_seconds,
                run.test.mae);
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape (paper): DyHSL has the fewest parameters among the\n"
      "competitive models while training time stays comparable.\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
