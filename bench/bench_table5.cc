// Reproduces paper Table V: ablation of the Dynamic Hypergraph Structure
// Learning block — low-rank learned incidence (DHSL) vs no structure
// learning (NSL, frozen random incidence) vs a from-scratch dense learnable
// adjacency (FS) — on SynPEMS03 and SynPEMS04.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

struct Row {
  const char* label;
  models::StructureLearning mode;
  double paper_mae03, paper_mae04;
};

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Table V: structure-learning ablation (DHSL/NSL/FS)", env);

  const std::vector<Row> rows = {
      {"DHSL", models::StructureLearning::kLowRank, 15.49, 17.66},
      {"NSL", models::StructureLearning::kFixedRandom, 16.43, 18.19},
      {"FS", models::StructureLearning::kFromScratch, 18.91, 24.32},
  };
  std::printf("%-6s", "SL");
  for (const char* ds : {"SynPEMS03", "SynPEMS04"}) {
    std::printf(" | %-44s", ds);
  }
  std::printf("\n");

  for (const char* name : {"SynPEMS03", "SynPEMS04"}) {
    if (!EnvListAllows("DYHSL_DATASETS", name)) continue;
  }
  std::vector<data::TrafficDataset> datasets;
  for (const char* name : {"SynPEMS03", "SynPEMS04"}) {
    if (EnvListAllows("DYHSL_DATASETS", name)) {
      datasets.push_back(MakeDataset(name, env));
    }
  }

  for (const Row& row : rows) {
    std::printf("%-6s", row.label);
    for (size_t di = 0; di < datasets.size(); ++di) {
      const auto& ds = datasets[di];
      train::ForecastTask task = train::ForecastTask::FromDataset(ds);
      models::DyHslConfig cfg;
      cfg.hidden_dim = env.zoo_config.hidden_dim;
      cfg.prior_layers = 3;
      cfg.mhce_layers = 2;
      cfg.num_hyperedges = 16;
      cfg.structure_learning = row.mode;
      cfg.seed = env.zoo_config.seed;
      models::DyHsl model(task, cfg);
      train::TrainResult tr = train::TrainModel(&model, ds, AblationTrainConfig(env));
      (void)tr;
      train::EvalResult ev = train::EvaluateModel(
          &model, ds, ds.test_range(), env.knobs.batch_size, 24);
      double paper = di == 0 ? row.paper_mae03 : row.paper_mae04;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "MAE %6.2f RMSE %6.2f MAPE %5.1f%% [paper MAE %.2f]",
                    ev.overall.mae, ev.overall.rmse, ev.overall.mape, paper);
      std::printf(" | %-44s", buf);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): DHSL < NSL < FS in error; learning the\n"
      "low-rank structure beats a frozen one, and a dense from-scratch\n"
      "adjacency is catastrophically over-parameterized.\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
