// Reproduces paper Table VII: effect of the number of scales J in
// Multi-scale Holistic Correlation Extraction on SynPEMS03 and SynPEMS04.
// J=1 uses {1}, J=2 uses {1,3}, J=6 uses {1,2,3,4,6,12} (paper's choice).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace dyhsl::bench {
namespace {

int Main() {
  BenchEnv env = BenchEnv::FromEnvironment();
  PrintHeaderLine("Table VII: multi-scale ablation (#scales)", env);

  struct Row {
    int scales;
    std::vector<int64_t> windows;
    double paper_mae03, paper_mae04;
  };
  const std::vector<Row> rows = {
      {1, {1}, 15.61, 18.14},
      {2, {1, 3}, 15.54, 18.07},
      {6, {1, 2, 3, 4, 6, 12}, 15.49, 17.66},
  };

  std::vector<data::TrafficDataset> datasets;
  for (const char* name : {"SynPEMS03", "SynPEMS04"}) {
    if (EnvListAllows("DYHSL_DATASETS", name)) {
      datasets.push_back(MakeDataset(name, env));
    }
  }
  std::printf("%-8s", "#Scale");
  for (const auto& ds : datasets) std::printf(" | %-48s", ds.name().c_str());
  std::printf("\n");

  for (const Row& row : rows) {
    std::printf("%-8d", row.scales);
    for (size_t di = 0; di < datasets.size(); ++di) {
      const auto& ds = datasets[di];
      train::ForecastTask task = train::ForecastTask::FromDataset(ds);
      models::DyHslConfig cfg;
      cfg.hidden_dim = env.zoo_config.hidden_dim;
      cfg.prior_layers = 3;
      cfg.mhce_layers = 2;
      cfg.num_hyperedges = 16;
      cfg.window_sizes = row.windows;
      cfg.seed = env.zoo_config.seed;
      models::DyHsl model(task, cfg);
      train::TrainModel(&model, ds, AblationTrainConfig(env));
      train::EvalResult ev = train::EvaluateModel(
          &model, ds, ds.test_range(), env.knobs.batch_size, 24);
      double paper = di == 0 ? row.paper_mae03 : row.paper_mae04;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "MAE %6.2f RMSE %6.2f MAPE %5.1f%% [paper MAE %.2f]",
                    ev.overall.mae, ev.overall.rmse, ev.overall.mape, paper);
      std::printf(" | %-48s", buf);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): more scales help monotonically; the gain\n"
      "from 1 -> 6 scales is modest but consistent.\n");
  return 0;
}

}  // namespace
}  // namespace dyhsl::bench

int main() { return dyhsl::bench::Main(); }
