// google-benchmark microbenchmarks for the inference-plan GEMM paths:
// prepacked weights vs on-the-fly packing, the direct-A kernels vs the
// legacy all-packed path, and the small-size serial fast path — at the
// shapes the serving hot loops actually run (metro-scale B=1 N=207
// activations against d=64 weights, and district-scale N=24 fleet
// batches against d=16 weights).

#include <benchmark/benchmark.h>

#include "src/core/rng.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/prepack.h"
#include "src/tensor/tensor.h"

namespace dyhsl {
namespace {

namespace T = ::dyhsl::tensor;

// Restores the process-wide fast-path toggle around each benchmark so the
// registration order cannot leak one benchmark's mode into the next.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool enabled) : prev_(T::SetGemmFastPaths(enabled)) {}
  ~FastPathGuard() { T::SetGemmFastPaths(prev_); }

 private:
  bool prev_;
};

// One serving-shaped GEMM, legacy kernel: packs op(A) and op(B) on every
// call. `m` is the activation row count (batch x nodes), n = k = d.
void BM_GemmLegacyPacked(benchmark::State& state) {
  const int64_t m = state.range(0), d = state.range(1);
  FastPathGuard guard(false);
  Rng rng(1);
  T::Tensor x = T::Tensor::Randn({m, d}, &rng);
  T::Tensor w = T::Tensor::Randn({d, d}, &rng);
  T::Tensor out({m, d});
  for (auto _ : state) {
    T::MatMulInto(x, w, false, false, 0.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m * d * d);
}
BENCHMARK(BM_GemmLegacyPacked)
    ->Args({207, 64})
    ->Args({2484, 64})
    ->Args({1536, 16});

// Same shapes through the fast paths: direct-A kernels (no A packing) and
// the small-size serial path, op(B) still packed per call.
void BM_GemmFastPaths(benchmark::State& state) {
  const int64_t m = state.range(0), d = state.range(1);
  FastPathGuard guard(true);
  Rng rng(1);
  T::Tensor x = T::Tensor::Randn({m, d}, &rng);
  T::Tensor w = T::Tensor::Randn({d, d}, &rng);
  T::Tensor out({m, d});
  for (auto _ : state) {
    T::MatMulInto(x, w, false, false, 0.0f, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m * d * d);
}
BENCHMARK(BM_GemmFastPaths)
    ->Args({207, 64})
    ->Args({2484, 64})
    ->Args({1536, 16});

// Full inference plan: fast paths plus a prepacked constant weight served
// straight from heap-pinned panels — the per-call pack cost is zero.
void BM_GemmPrepacked(benchmark::State& state) {
  const int64_t m = state.range(0), d = state.range(1);
  FastPathGuard guard(true);
  Rng rng(1);
  T::Tensor x = T::Tensor::Randn({m, d}, &rng);
  T::Tensor w = T::Tensor::Randn({d, d}, &rng);
  T::Tensor out({m, d});
  std::shared_ptr<const T::PackedPanels> pre_b =
      T::PackedPanels::PackBOperand(w.data(), d, /*trans=*/false, d, d);
  for (auto _ : state) {
    T::BatchedGemmPrepackedInto(1, false, false, m, d, d, x.data(), 0, d,
                                nullptr, w.data(), 0, d, pre_b.get(), 0.0f,
                                out.data(), 0, d);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * m * d * d);
}
BENCHMARK(BM_GemmPrepacked)
    ->Args({207, 64})
    ->Args({2484, 64})
    ->Args({1536, 16});

// The prepack itself (what an engine pays once per weight at Create or
// checkpoint reload) — nanoseconds per panel build, to put the cache's
// one-time cost in context.
void BM_PackBOperand(benchmark::State& state) {
  const int64_t d = state.range(0);
  Rng rng(2);
  T::Tensor w = T::Tensor::Randn({d, d}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        T::PackedPanels::PackBOperand(w.data(), d, false, d, d));
  }
  state.SetItemsProcessed(state.iterations() * d * d);
}
BENCHMARK(BM_PackBOperand)->Arg(16)->Arg(64)->Arg(256);

// Cache lookup on the serving path: enrolled pointer, warm panels. This
// is the per-GEMM overhead a PrepackLookupScope adds.
void BM_PrepackCacheLookup(benchmark::State& state) {
  const int64_t d = 64;
  Rng rng(3);
  T::Tensor w = T::Tensor::Randn({d, d}, &rng);
  T::PrepackCache::Instance().Enroll(w);
  for (auto _ : state) {
    benchmark::DoNotOptimize(T::PrepackCache::Instance().Lookup(
        w.data(), T::PackedPanels::Side::kB, false, d, d));
  }
  T::PrepackCache::Instance().Release(w.data());
}
BENCHMARK(BM_PrepackCacheLookup);

}  // namespace
}  // namespace dyhsl

BENCHMARK_MAIN();
